package fastnet_test

// Differential verification of the backend duality: the congestion-unaware
// analytical backend (fastnet) against the congestion-aware packet backend
// (noc), and both against the closed-form oracle.
//
// On the oracle's uncongested validity domain (single-chunk, aggressive
// injection, fault-free — the same 112-config corpus as the collectives
// package's TestOracleExactAcrossConfigs) all three must agree EXACTLY,
// zero tolerance: end-to-end cycles, per-phase breakdowns, and per-class
// byte totals. The fast backend and the packet backend are fully
// independent code paths sharing only the noc.Message type, so any drift
// in either transport's arithmetic fails here.
//
// Outside that domain (the default 64-way chunk split, where dispatcher
// and LSQ concurrency interleave traffic) exactness is not guaranteed —
// only bounded divergence, because the paper-configuration buffers are
// large enough that backpressure is rare.

import (
	"fmt"
	"testing"

	"astrasim/internal/audit"
	"astrasim/internal/cli"
	"astrasim/internal/collectives"
	"astrasim/internal/config"
	"astrasim/internal/oracle"
	"astrasim/internal/system"
)

// corpusTopos mirrors the conservation corpus: every topology family the
// simulator supports, including mixed-class scale-out paths.
var corpusTopos = []string{
	"1x8x1",      // single-dimension ring
	"2x2x2",      // 3D torus, all dims active
	"2x4x2",      // asymmetric 3D torus
	"2x2x2x2",    // 4D torus extension
	"a2a:2x4",    // hierarchical alltoall
	"sw:4x2",     // switch-based scale-up
	"so:2x2x1/2", // scale-out spine: exercises mixed-class paths
	// Compositional hierarchies: every dimension kind, mixed orders.
	"hier:sw4,fc3,ring4",     // DGX-like switch + FC + ring composition
	"hier:ring2,sw8",         // halving-doubling through a pow2 switch dim
	"hier:fc4,ring2x1,sw2",   // FC-first with an explicit lane count
	"hier:ring2,ring4,ring2", // all-ring composition (TorusND-equivalent)
}

var corpusOps = []collectives.Op{
	collectives.ReduceScatter, collectives.AllGather,
	collectives.AllReduce, collectives.AllToAll,
}

// runBackend executes one collective on a fresh audited instance of the
// given backend and returns its handle plus the per-class byte totals.
func runBackend(t *testing.T, backend config.Backend, spec string, alg config.Algorithm,
	splits int, op collectives.Op, setBytes int64) (*system.Handle, [3]int64) {
	t.Helper()
	cfg := config.DefaultSystem()
	cfg.Algorithm = alg
	cfg.Backend = backend
	cfg.PreferredSetSplits = splits
	topo, err := cli.BuildTopology(spec, cli.DefaultTopologyOptions(), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := system.NewInstance(topo, cfg, config.DefaultNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Net.Backend(); got != backend {
		t.Fatalf("NewInstance built a %v backend, want %v", got, backend)
	}
	aud := audit.Attach(inst.Sys, inst.Net)
	h, err := inst.Sys.IssueCollective(op, setBytes, op.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Eng.Run()
	if !h.Done() {
		t.Fatalf("%v backend: collective did not complete", backend)
	}
	if err := aud.Report().Err(); err != nil {
		t.Fatalf("%v backend: %v", backend, err)
	}
	intra, inter, so := inst.Net.TotalBytesByClass()
	return h, [3]int64{intra, inter, so}
}

// TestFastExactAcrossConfigs is the exactness half of the differential
// harness: over the full uncongested corpus, fast-mode completion cycles,
// per-phase queue/network breakdowns, and per-class link bytes must equal
// the packet backend's — and both must equal the oracle's Predict — with
// zero tolerance.
func TestFastExactAcrossConfigs(t *testing.T) {
	sizes := []int64{4096, 1 << 20}
	configs := 0
	for _, spec := range corpusTopos {
		for _, alg := range []config.Algorithm{config.Baseline, config.Enhanced} {
			for _, op := range corpusOps {
				for _, setBytes := range sizes {
					configs++
					t.Run(fmt.Sprintf("%s/%v/%v/%d", spec, alg, op, setBytes), func(t *testing.T) {
						pkt, pktBytes := runBackend(t, config.PacketBackend, spec, alg, 1, op, setBytes)
						fast, fastBytes := runBackend(t, config.FastBackend, spec, alg, 1, op, setBytes)

						if fast.Duration() != pkt.Duration() {
							t.Fatalf("fast backend ran %d cycles, packet backend %d (delta %d)",
								fast.Duration(), pkt.Duration(), int64(fast.Duration())-int64(pkt.Duration()))
						}
						if fastBytes != pktBytes {
							t.Fatalf("fast backend carried %v bytes per class, packet backend %v",
								fastBytes, pktBytes)
						}
						if fast.NumPhases() != pkt.NumPhases() {
							t.Fatalf("fast backend compiled %d phases, packet backend %d",
								fast.NumPhases(), pkt.NumPhases())
						}
						for i := 0; i <= fast.NumPhases(); i++ {
							if fq, pq := fast.AvgQueueDelay(i), pkt.AvgQueueDelay(i); fq != pq {
								t.Fatalf("phase %d queue delay: fast %v, packet %v", i, fq, pq)
							}
							if fn, pn := fast.AvgNetworkDelay(i), pkt.AvgNetworkDelay(i); fn != pn {
								t.Fatalf("phase %d network delay: fast %v, packet %v", i, fn, pn)
							}
						}

						// Both backends must land exactly on the oracle's
						// closed-form prediction (fast mode is that
						// recurrence run live, so this is the acceptance
						// identity fast == Predict, zero tolerance).
						cfg := config.DefaultSystem()
						cfg.Algorithm = alg
						cfg.PreferredSetSplits = 1
						topo, err := cli.BuildTopology(spec, cli.DefaultTopologyOptions(), &cfg)
						if err != nil {
							t.Fatal(err)
						}
						m, err := oracle.NewModel(topo, cfg, config.DefaultNetwork())
						if err != nil {
							t.Fatal(err)
						}
						pred, err := m.Predict(op, setBytes)
						if err != nil {
							t.Fatal(err)
						}
						if pred.Cycles != fast.Duration() {
							t.Fatalf("oracle predicted %d cycles, fast backend ran %d (delta %d)",
								pred.Cycles, fast.Duration(), int64(pred.Cycles)-int64(fast.Duration()))
						}
					})
				}
			}
		}
	}
	if configs < 110 {
		t.Fatalf("differential corpus covers only %d configs, want >= 110", configs)
	}
}

// TestFastBoundedDivergenceMultiChunk is the approximation half: with the
// default 64-way chunk split (dispatcher and LSQ concurrency active, so
// outside the oracle's exactness domain) the fast backend must stay within
// a small relative band of the packet backend. The Table IV buffers hold
// tens of thousands of packets, so backpressure — the only semantic the
// fast backend drops — is rare at these scales, and the band is tight.
func TestFastBoundedDivergenceMultiChunk(t *testing.T) {
	const setBytes = 4 << 20
	const maxRel = 0.05 // 5% band
	for _, spec := range []string{"2x4x2", "a2a:2x4", "sw:4x2"} {
		for _, op := range []collectives.Op{collectives.AllReduce, collectives.AllToAll} {
			t.Run(fmt.Sprintf("%s/%v", spec, op), func(t *testing.T) {
				pkt, pktBytes := runBackend(t, config.PacketBackend, spec, config.Enhanced, 64, op, setBytes)
				fast, fastBytes := runBackend(t, config.FastBackend, spec, config.Enhanced, 64, op, setBytes)
				if fastBytes != pktBytes {
					t.Fatalf("fast backend carried %v bytes per class, packet backend %v",
						fastBytes, pktBytes)
				}
				fd, pd := float64(fast.Duration()), float64(pkt.Duration())
				if rel := (fd - pd) / pd; rel > maxRel || rel < -maxRel {
					t.Fatalf("fast backend ran %d cycles, packet backend %d: divergence %.2f%% exceeds %.0f%%",
						fast.Duration(), pkt.Duration(), 100*rel, 100*maxRel)
				}
			})
		}
	}
}
