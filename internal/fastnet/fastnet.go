// Package fastnet is the congestion-unaware analytical network backend:
// the fast half of the simulator's backend duality (config.FastBackend),
// standing in for the original ASTRA-SIM's analytical network binary the
// way internal/noc stands in for its Garnet binary.
//
// The model is the oracle's alpha-beta recurrence promoted to a live
// transport: every link is a FIFO serializer with the packet model's exact
// rate arithmetic (bandwidth x efficiency with the sub-cycle carry, the
// minimum-one-cycle clamp, per-class packetization and the
// MaxPacketsPerMessage cap) and the packet model's hop delay (wire latency
// plus one router pipeline) — but with unlimited input buffers, so no
// backpressure ever stalls a serializer. Removing buffer limits is the
// entire semantic difference from internal/noc: on any run where the
// packet model's buffers never fill (the oracle's uncongested validity
// domain, and in practice every paper-configuration run — Table IV buffers
// hold thousands of packets), the two backends produce byte-identical
// timestamps, because a FIFO serializer that is never blocked has a
// timeline fully determined by its arrival order.
//
// That determinism is what makes the model fast. A packet entering an
// unblockable FIFO link can be charged its serialization interval the
// moment it arrives: start = max(now, link.busyUntil), advancing the same
// carry the packet model would. So a message over a single-link path (the
// dominant case — every torus ring hop) costs O(packets) float arithmetic
// and exactly one delivery event, instead of ~3 heap events per packet —
// and because that charge is a pure function of the link's bandwidth and
// carry bits plus the packet schedule, it is memoized: symmetric
// topologies replay one link's carry orbit on every link, collapsing the
// steady-state cost to O(1) per message (see serKey).
// Multi-hop paths (switch and scale-out fabrics) keep one arrival event
// per packet per downstream hop, because packets from different sources
// interleave there in arrival order; the serialization at each hop is
// still charged eagerly. The per-packet carry arithmetic is iterated, not
// telescoped, so the float stream is bit-identical to internal/noc's.
//
// Fault injection (outages, degradation windows, drops) is packet-only:
// congestion-unaware timing under loss is not meaningful, and callers are
// rejected at configuration time (see internal/faults).
//
// # Concurrency contract
//
// A fastnet.Network is not safe for concurrent use: like the serial
// packet backend, it is owned by the goroutine advancing its engine.
// It is also always serial — the backend is analytic end-to-end, so
// config.System.IntraParallel is deliberately ignored (there is no event
// load to shard). Distinct instances share nothing and may run on
// distinct goroutines freely, which is how sweeps parallelize.
package fastnet

import (
	"fmt"
	"math"

	"astrasim/internal/config"
	"astrasim/internal/eventq"
	"astrasim/internal/noc"
	"astrasim/internal/topology"
)

// flink is one physical link's analytical state: a never-blocked FIFO
// serializer.
type flink struct {
	spec topology.LinkSpec
	net  *Network

	// effBW is the serialization rate in effective bytes/cycle.
	effBW float64
	// serCarry accumulates sub-cycle serialization remainders, exactly as
	// noc's link.serCarry does.
	serCarry float64
	latency  eventq.Time
	// busyUntil is when the serializer frees up: with unlimited buffers
	// and FIFO order, the start time of any newly charged packet is
	// max(now, busyUntil) regardless of future traffic.
	busyUntil eventq.Time

	stats noc.LinkStats
}

// serCycles charges one packet's serialization, advancing the carry with
// the exact float operations of noc's link.serCycles so the two backends
// agree bit-for-bit.
func (l *flink) serCycles(bytes int64) eventq.Time {
	exact := float64(bytes)/l.effBW + l.serCarry
	c := eventq.Time(exact)
	l.serCarry = exact - float64(c)
	if c == 0 {
		c = 1
		l.serCarry = 0
	}
	return c
}

// hopDelay is the post-serialization delay to the next stage: wire latency
// plus one router pipeline.
func (l *flink) hopDelay() eventq.Time {
	return l.latency + eventq.Time(l.net.params.RouterLatency)
}

// serKey identifies one whole-message serialization charge. The per-packet
// carry loop reads nothing but the link's effective bandwidth, its carry
// register, and the message's packet schedule (bytes + packet size), so
// its output — total cycles and the carry left behind — is a pure function
// of these four values. Floats are keyed by their bit patterns: two carries
// that differ in the last ulp are different keys, which is what keeps
// cached results bit-identical to the loop they replaced.
type serKey struct {
	bw    uint64 // math.Float64bits of the link's effBW
	carry uint64 // math.Float64bits of the link's serCarry before the charge
	bytes int64  // message payload bytes
	pkt   int64  // packet size after the MaxPacketsPerMessage cap
}

// serVal is the memoized result: the serializer advances cycles and is left
// holding carry.
type serVal struct {
	cycles eventq.Time
	carry  float64
}

// serCacheMaxEntries bounds serCache. Symmetric workloads revisit a small
// carry orbit, so in practice the cache stays tiny; the bound only bites
// on adversarial traffic (e.g. thousands of distinct message sizes in one
// run), where it caps memory in long-lived processes. When full, the
// whole map is dropped and rebuilt — a deterministic policy, and safe
// because a miss just re-runs the loop, whose output is bit-identical to
// the cached value.
const serCacheMaxEntries = 1 << 16

// fpkt is one in-flight packet on a multi-hop path. last marks the
// message's final packet: FIFO links keep a message's packets in order, so
// only the final packet's last-hop arrival decides delivery.
type fpkt struct {
	msg     *noc.Message
	bytes   int64
	pathPos int
	last    bool
}

// Network is the congestion-unaware transport over a topology's physical
// links. It implements system.Network.
type Network struct {
	eng    *eventq.Engine
	topo   topology.Topology
	params config.Network
	links  []*flink
	nextID uint64

	// onSend is the injection observer (audit accounting hook).
	onSend func(*noc.Message)
	// inFlight counts injected-but-undelivered messages (Quiet).
	inFlight int

	// DeliveredMessages counts completed messages (for tests/stats).
	DeliveredMessages uint64

	// pktFree recycles fpkt objects for multi-hop paths.
	pktFree []*fpkt

	// serCache memoizes whole-message single-link serialization charges.
	// Carry registers walk a deterministic orbit (the chain is a pure
	// float map), and symmetric topologies run the same orbit on every
	// link, so after the first link of a class pays the O(packets) loop
	// for each orbit position, every other link's charge is an O(1) hit.
	// A miss is always safe — it just runs the loop — so correctness does
	// not depend on orbits actually cycling.
	serCache map[serKey]serVal
}

// New builds the analytical network for topo using the same Garnet-level
// parameters as the packet backend; only buffer capacities are ignored
// (they are infinite here).
func New(eng *eventq.Engine, topo topology.Topology, p config.Network) (*Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := &Network{eng: eng, topo: topo, params: p, serCache: make(map[serKey]serVal)}
	for _, spec := range topo.Links() {
		l := &flink{spec: spec, net: n}
		switch spec.Class {
		case topology.IntraPackage:
			l.effBW = p.LocalLinkBandwidth * p.LocalLinkEfficiency
			l.latency = eventq.Time(p.LocalLinkLatency)
		case topology.InterPackage:
			l.effBW = p.PackageLinkBandwidth * p.PackageLinkEfficiency
			l.latency = eventq.Time(p.PackageLinkLatency)
		case topology.ScaleOutLink:
			l.effBW = p.ScaleOutLinkBandwidth * p.ScaleOutLinkEfficiency
			l.latency = eventq.Time(p.ScaleOutLinkLatency)
		default:
			// A link class without configured bandwidth/latency/packet-size
			// parameters would serialize at rate zero; refuse at
			// construction instead of diverging (or panicking in
			// packetSizeFor) mid-simulation.
			return nil, fmt.Errorf("fastnet: link %d has class %v with no configured network parameters", spec.ID, spec.Class)
		}
		n.links = append(n.links, l)
	}
	return n, nil
}

// Backend identifies this implementation in the backend duality.
func (n *Network) Backend() config.Backend { return config.FastBackend }

// SetOnSend installs (or clears) the per-message injection observer.
func (n *Network) SetOnSend(fn func(*noc.Message)) { n.onSend = fn }

// pathPacketSize mirrors noc: the smallest packet-size class along the
// path, so chunking matches the packet backend byte-for-byte.
func (n *Network) pathPacketSize(path []topology.LinkID) int64 {
	pktSize := int64(n.packetSizeFor(n.links[path[0]].spec.Class))
	for _, id := range path[1:] {
		if ps := int64(n.packetSizeFor(n.links[id].spec.Class)); ps < pktSize {
			pktSize = ps
		}
	}
	return pktSize
}

func (n *Network) packetSizeFor(class topology.LinkClass) int {
	switch class {
	case topology.IntraPackage:
		return n.params.LocalPacketSize
	case topology.InterPackage:
		return n.params.PackagePacketSize
	case topology.ScaleOutLink:
		return n.params.ScaleOutPacketSize
	}
	// Provably-internal invariant: New rejects topologies carrying any
	// link class not enumerated here, so no user-supplied configuration
	// can reach this panic.
	panic(fmt.Sprintf("fastnet: no packet size configured for link class %v", class))
}

// Send injects msg: the first link's serialization is charged eagerly in
// closed form, and the message either completes with a single delivery
// event (single-link path) or fans out per-packet arrival events to the
// remaining hops.
func (n *Network) Send(msg *noc.Message) {
	if len(msg.Path) == 0 {
		panic("fastnet: message with empty path")
	}
	if msg.Bytes <= 0 {
		panic(fmt.Sprintf("fastnet: message with %d bytes", msg.Bytes))
	}
	n.nextID++
	msg.ID = n.nextID
	now := n.eng.Now()
	msg.Injected = now
	if n.onSend != nil {
		n.onSend(msg)
	}
	n.inFlight++

	pktSize := n.pathPacketSize(msg.Path)
	numPkts := (msg.Bytes + pktSize - 1) / pktSize
	if maxP := int64(n.params.MaxPacketsPerMessage); maxP > 0 && numPkts > maxP {
		numPkts = maxP
		pktSize = (msg.Bytes + numPkts - 1) / numPkts
	}

	first := n.links[msg.Path[0]]
	start := now
	if first.busyUntil > start {
		start = first.busyUntil
	}
	msg.SerStart = start

	if len(msg.Path) == 1 {
		// Single-link fast path: charge all packets back-to-back and
		// schedule one delivery event at the last packet's arrival. The
		// whole charge is memoized on (bandwidth, carry, bytes, packet
		// size) bits — a hit replays the loop's exact output in O(1).
		key := serKey{
			bw:    math.Float64bits(first.effBW),
			carry: math.Float64bits(first.serCarry),
			bytes: msg.Bytes,
			pkt:   pktSize,
		}
		v, ok := n.serCache[key]
		if ok {
			first.serCarry = v.carry
		} else {
			finish := start
			remaining := msg.Bytes
			for i := int64(0); i < numPkts; i++ {
				b := pktSize
				if b > remaining {
					b = remaining
				}
				remaining -= b
				finish += first.serCycles(b)
			}
			v = serVal{cycles: finish - start, carry: first.serCarry}
			if len(n.serCache) >= serCacheMaxEntries {
				n.serCache = make(map[serKey]serVal)
			}
			n.serCache[key] = v
		}
		finish := start + v.cycles
		first.busyUntil = finish
		first.stats.Packets += uint64(numPkts)
		first.stats.Bytes += msg.Bytes
		first.stats.BusyCycles += v.cycles
		n.eng.CallAt(finish+first.hopDelay(), fastDeliver, n, msg)
		return
	}

	// Multi-hop: charge the first link per packet (its FIFO order is the
	// injection order, so eager charging is exact) and land each packet on
	// the second hop after the wire delay. Downstream hops interleave
	// packets from different sources in arrival order, so they are driven
	// by per-packet events from here on.
	finish := start
	remaining := msg.Bytes
	hop := first.hopDelay()
	next := n.links[msg.Path[1]]
	for i := int64(0); i < numPkts; i++ {
		b := pktSize
		if b > remaining {
			b = remaining
		}
		remaining -= b
		ser := first.serCycles(b)
		finish += ser
		first.stats.Packets++
		first.stats.Bytes += b
		first.stats.BusyCycles += ser
		n.eng.CallAt(finish+hop, fastArrive, next, n.allocPacket(msg, b, 1, i == numPkts-1))
	}
	first.busyUntil = finish
}

// allocPacket takes an fpkt from the free list, or heap-allocates when the
// list is empty. Single-threaded per network: no locking.
func (n *Network) allocPacket(msg *noc.Message, bytes int64, pathPos int, last bool) *fpkt {
	if i := len(n.pktFree) - 1; i >= 0 {
		p := n.pktFree[i]
		n.pktFree = n.pktFree[:i]
		p.msg, p.bytes, p.pathPos, p.last = msg, bytes, pathPos, last
		return p
	}
	return &fpkt{msg: msg, bytes: bytes, pathPos: pathPos, last: last}
}

// fastArrive is the eventq.CallFunc that lands packet b on link a: the
// serialization is charged immediately (start = max(now, busyUntil) — the
// unblockable-FIFO identity), and the packet either moves to its next hop
// or, on the message's final packet at the final hop, completes delivery.
func fastArrive(a, b any) {
	l, p := a.(*flink), b.(*fpkt)
	n := l.net
	start := n.eng.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	ser := l.serCycles(p.bytes)
	finish := start + ser
	l.busyUntil = finish
	l.stats.Packets++
	l.stats.Bytes += p.bytes
	l.stats.BusyCycles += ser

	msg := p.msg
	if p.pathPos+1 < len(msg.Path) {
		next := n.links[msg.Path[p.pathPos+1]]
		p.pathPos++
		n.eng.CallAt(finish+l.hopDelay(), fastArrive, next, p)
		return
	}
	last := p.last
	p.msg = nil
	n.pktFree = append(n.pktFree, p)
	if last {
		n.eng.CallAt(finish+l.hopDelay(), fastDeliver, n, msg)
	}
}

// fastDeliver is the eventq.CallFunc that completes message b on network a
// when its final packet arrives at the destination endpoint.
func fastDeliver(a, b any) {
	n, msg := a.(*Network), b.(*noc.Message)
	msg.Delivered = n.eng.Now()
	n.DeliveredMessages++
	n.inFlight--
	if msg.OnDelivered != nil {
		msg.OnDelivered(msg)
	}
}

// TotalBytesByClass sums bytes carried per link class.
func (n *Network) TotalBytesByClass() (intra, inter, scaleOut int64) {
	for _, l := range n.links {
		switch l.spec.Class {
		case topology.IntraPackage:
			intra += l.stats.Bytes
		case topology.InterPackage:
			inter += l.stats.Bytes
		case topology.ScaleOutLink:
			scaleOut += l.stats.Bytes
		}
	}
	return intra, inter, scaleOut
}

// DroppedPathBytesByClass is always zero: the analytical backend never
// drops packets.
func (n *Network) DroppedPathBytesByClass() (intra, inter, scaleOut int64) { return 0, 0, 0 }

// DropStats is always zero: fault injection is packet-only.
func (n *Network) DropStats() noc.FaultStats { return noc.FaultStats{} }

// ScaleLinkBandwidth derates (factor < 1) or boosts one link's effective
// bandwidth. Must be called before traffic that should observe it.
func (n *Network) ScaleLinkBandwidth(id topology.LinkID, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("fastnet: bandwidth scale must be positive, got %v", factor))
	}
	n.links[id].effBW *= factor
}

// LinkStatsFor returns a copy of the counters for one link.
func (n *Network) LinkStatsFor(id topology.LinkID) noc.LinkStats { return n.links[id].stats }

// UtilizationByClass computes per-class link utilization over [0, until].
func (n *Network) UtilizationByClass(until eventq.Time) map[topology.LinkClass]noc.ClassUtilization {
	out := make(map[topology.LinkClass]noc.ClassUtilization)
	if until == 0 {
		return out
	}
	for _, l := range n.links {
		u := out[l.spec.Class]
		u.Links++
		busy := float64(l.stats.BusyCycles) / float64(until)
		u.AvgBusy += busy
		if busy > u.PeakBusy {
			u.PeakBusy = busy
		}
		out[l.spec.Class] = u
	}
	for class, u := range out {
		u.AvgBusy /= float64(u.Links)
		out[class] = u
	}
	return out
}

// Quiet reports whether no messages are in flight.
func (n *Network) Quiet() bool { return n.inFlight == 0 }

// DebugLinks snapshots every link's dynamic state. The analytical model
// holds no queues or reservations; a link is busy while its charged
// serialization timeline extends past now.
func (n *Network) DebugLinks() []noc.LinkDebugState {
	out := make([]noc.LinkDebugState, len(n.links))
	for i, l := range n.links {
		out[i] = noc.LinkDebugState{
			ID:    l.spec.ID,
			Class: l.spec.Class,
			Busy:  l.busyUntil > n.eng.Now(),
			Stats: l.stats,
		}
	}
	return out
}
