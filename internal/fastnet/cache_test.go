package fastnet

// The serialization-charge memoization was sized for one-shot CLI runs;
// a daemon keeps instances alive for whole jobs and must not let an
// adversarial traffic mix (thousands of distinct message sizes) grow the
// cache without bound. These tests pin the cap and the determinism of
// the overflow policy.

import (
	"testing"

	"astrasim/internal/config"
	"astrasim/internal/eventq"
	"astrasim/internal/noc"
	"astrasim/internal/topology"
)

// sendDistinct pushes n single-link messages with n distinct payload
// sizes through a fresh fast network and returns it.
func sendDistinct(t *testing.T, n int) *Network {
	t.Helper()
	topo, err := topology.NewTorus(1, 8, 1, topology.DefaultTorusConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := eventq.New()
	net, err := New(eng, topo, config.DefaultNetwork())
	if err != nil {
		t.Fatal(err)
	}
	path := []topology.LinkID{topo.Links()[0].ID}
	for i := 0; i < n; i++ {
		net.Send(&noc.Message{
			Src:   0,
			Dst:   1,
			Bytes: int64(i + 1),
			Path:  path,
		})
		eng.Run() // drain deliveries so event memory does not dominate
	}
	return net
}

// TestSerCacheBounded overflows the memoization cap with distinct keys
// and asserts the map never exceeds it: every insert above the cap drops
// the map first, so a long-lived process holds at most one generation.
func TestSerCacheBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("sends serCacheMaxEntries+ messages")
	}
	net := sendDistinct(t, serCacheMaxEntries+100)
	if got := len(net.serCache); got > serCacheMaxEntries {
		t.Fatalf("serCache holds %d entries, cap is %d", got, serCacheMaxEntries)
	}
	// The 100 post-overflow inserts must live in a fresh generation.
	if got := len(net.serCache); got > 200 {
		t.Fatalf("serCache holds %d entries after overflow; want the post-clear generation only", got)
	}
}

// TestSerCacheOverflowDeterministic runs the same overflowing traffic
// twice and asserts bit-identical timing: a cache miss re-runs the carry
// loop whose output equals the cached value, so the clear-on-overflow
// policy cannot perturb results.
func TestSerCacheOverflowDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sends serCacheMaxEntries+ messages")
	}
	run := func() (eventq.Time, uint64) {
		topo, err := topology.NewTorus(1, 8, 1, topology.DefaultTorusConfig())
		if err != nil {
			t.Fatal(err)
		}
		eng := eventq.New()
		net, err := New(eng, topo, config.DefaultNetwork())
		if err != nil {
			t.Fatal(err)
		}
		path := []topology.LinkID{topo.Links()[0].ID}
		var last eventq.Time
		for i := 0; i < serCacheMaxEntries+100; i++ {
			net.Send(&noc.Message{
				Src:   0,
				Dst:   1,
				Bytes: int64(i%257 + 1), // revisit sizes: mix hits and misses
				Path:  path,
			})
			eng.Run()
			last = eng.Now()
		}
		return last, net.DeliveredMessages
	}
	t1, d1 := run()
	t2, d2 := run()
	if t1 != t2 || d1 != d2 {
		t.Fatalf("overflowing runs diverged: (%d cycles, %d msgs) vs (%d cycles, %d msgs)", t1, d1, t2, d2)
	}
}
