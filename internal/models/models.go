// Package models builds workload definitions (paper Fig. 8 files) for the
// DNNs the paper evaluates: ResNet-50 (data-parallel, Figs. 14-18),
// Transformer (hybrid-parallel, Fig. 13), and a DLRM-style recommendation
// model whose distributed embedding tables motivate the all-to-all
// collective (§III-B). Layer compute delays come from the analytical
// systolic-array model; communication sizes are computed from the layer
// dimensions exactly as the paper describes (§IV-C).
package models

import (
	"fmt"

	"astrasim/internal/collectives"
	"astrasim/internal/compute"
	"astrasim/internal/workload"
)

// GradBytes is the width of communicated gradients/activations (fp32
// accumulation, standard for the 2019-2020 training systems the paper
// targets).
const GradBytes = 4

// defaultUpdatePerKB is the local update cost: cycles per KB to apply the
// reduced gradients (Fig. 8's "Local Update Time").
const defaultUpdatePerKB = 1

// convSpec is one convolution layer of a CNN.
type convSpec struct {
	name     string
	inH      int // input spatial size (square)
	cin, k   int
	cout     int
	stride   int
	extraPar int // folded-in parameters (projection shortcuts)
}

// outH returns the output spatial size.
func (c convSpec) outH() int { return (c.inH + c.stride - 1) / c.stride }

// params returns the weight count.
func (c convSpec) params() int64 {
	return int64(c.k)*int64(c.k)*int64(c.cin)*int64(c.cout) + int64(c.extraPar)
}

// fwdGEMM returns the im2col GEMM of the forward pass for a batch.
func (c convSpec) fwdGEMM(batch int) compute.GEMM {
	o := c.outH()
	return compute.GEMM{M: batch * o * o, K: c.cin * c.k * c.k, N: c.cout}
}

// convLayer lowers a convSpec to a data-parallel workload layer: three
// training GEMMs for compute and a weight-gradient all-reduce sized by the
// parameter count. DRAM traffic per pass is the underlying tensor volume
// (input + weights + output), not the k^2-duplicated im2col matrix.
func convLayer(m compute.Model, c convSpec, batch int) workload.Layer {
	f, ig, wg := compute.TrainingGEMMs(c.fwdGEMM(batch))
	o := c.outH()
	elems := int64(batch)*int64(c.inH)*int64(c.inH)*int64(c.cin) + // activations
		c.params() + // weights
		int64(batch)*int64(o)*int64(o)*int64(c.cout) // outputs
	traffic := elems * int64(m.ElemBytes)
	overhead := uint64(float64(m.LayerOverhead) / m.Scale)
	return workload.Layer{
		Name:        c.name,
		FwdCompute:  m.GEMMCyclesWithTraffic(f, traffic) + overhead,
		IGCompute:   m.GEMMCyclesWithTraffic(ig, traffic) + overhead,
		WGCompute:   m.GEMMCyclesWithTraffic(wg, traffic) + overhead,
		FwdComm:     collectives.None,
		IGComm:      collectives.None,
		WGComm:      collectives.AllReduce,
		WGBytes:     c.params() * GradBytes,
		UpdatePerKB: defaultUpdatePerKB,
	}
}

// ResNet50 returns the data-parallel ResNet-50 workload (He et al. 2015)
// at the given local minibatch size (the paper uses 32). The 48 bottleneck
// convolutions, the stem convolution, and the classifier make 50 layers;
// the four projection-shortcut convolutions are folded into the parameter
// count of their stage's first block.
func ResNet50(m compute.Model, batch int) workload.Definition {
	specs := resnet50Specs()
	def := workload.Definition{Name: "ResNet-50", Parallelism: workload.DataParallel}
	for _, c := range specs {
		def.Layers = append(def.Layers, convLayer(m, c, batch))
	}
	// Classifier: global average pool + 2048x1000 fully connected.
	f, ig, wg := compute.TrainingGEMMs(compute.GEMM{M: batch, K: 2048, N: 1000})
	def.Layers = append(def.Layers, workload.Layer{
		Name:       "fc1000",
		FwdCompute: m.LayerCycles(f), IGCompute: m.LayerCycles(ig), WGCompute: m.LayerCycles(wg),
		WGComm:      collectives.AllReduce,
		WGBytes:     (2048*1000 + 1000) * GradBytes,
		UpdatePerKB: defaultUpdatePerKB,
	})
	return def
}

func stageName(stage, block int) string {
	return "conv" + string(rune('0'+stage)) + "_" + string(rune('a'+block))
}

// resnet50Specs returns the 49 convolution layers of ResNet-50 (stem plus
// 16 bottleneck blocks of three convolutions; v1.5 convention with the
// stride on the 3x3 convolution).
func resnet50Specs() []convSpec {
	specs := []convSpec{{name: "conv1", inH: 224, cin: 3, k: 7, cout: 64, stride: 2}}
	type stage struct {
		blocks, mid, out, inH int
		firstStride           int
	}
	stages := []stage{
		{blocks: 3, mid: 64, out: 256, inH: 56, firstStride: 1},
		{blocks: 4, mid: 128, out: 512, inH: 56, firstStride: 2},
		{blocks: 6, mid: 256, out: 1024, inH: 28, firstStride: 2},
		{blocks: 3, mid: 512, out: 2048, inH: 14, firstStride: 2},
	}
	cin := 64 // after conv1 + maxpool
	for si, st := range stages {
		h := st.inH
		for b := 0; b < st.blocks; b++ {
			stride := 1
			if b == 0 {
				stride = st.firstStride
			}
			extra := 0
			if b == 0 {
				extra = cin * st.out // 1x1 projection shortcut
			}
			base := stageName(si+2, b)
			specs = append(specs,
				convSpec{name: base + "a", inH: h, cin: cin, k: 1, cout: st.mid, stride: 1, extraPar: extra},
				convSpec{name: base + "b", inH: h, cin: st.mid, k: 3, cout: st.mid, stride: stride},
				convSpec{name: base + "c", inH: h / stride, cin: st.mid, k: 1, cout: st.out, stride: 1},
			)
			h /= stride
			cin = st.out
		}
	}
	return specs
}

// Transformer returns the hybrid-parallel Transformer encoder workload
// (Vaswani et al. 2017, base configuration: d_model 512, d_ff 2048, 8
// heads) for the given local minibatch and sequence length. The paper runs
// it hybrid-parallel on a 2x2x2 torus: data-parallel across the local and
// horizontal dimensions, model-parallel across the vertical dimension
// (Fig. 13) — so encoder layers communicate in all three passes: forward
// output activations (all-gather), input gradients (all-reduce) and weight
// gradients (all-reduce). The embedding and classifier communicate weight
// gradients only ("some layers may not have communications").
func Transformer(m compute.Model, batch, seqLen int) workload.Definition {
	return TransformerCustom(m, TransformerConfig{
		Name: "Transformer", DModel: 512, DFF: 2048, Heads: 8, Layers: 6,
		Vocab: 8192, Batch: batch, SeqLen: seqLen,
	})
}

// TransformerConfig parameterizes TransformerCustom.
type TransformerConfig struct {
	Name          string
	DModel, DFF   int
	Heads, Layers int
	Vocab         int
	Batch, SeqLen int
}

// BERTLarge returns the BERT-Large encoder (Devlin et al. 2018: 24 layers,
// d_model 1024, d_ff 4096, 16 heads, 30K WordPiece vocabulary) as a
// hybrid-parallel workload.
func BERTLarge(m compute.Model, batch, seqLen int) workload.Definition {
	return TransformerCustom(m, TransformerConfig{
		Name: "BERT-Large", DModel: 1024, DFF: 4096, Heads: 16, Layers: 24,
		Vocab: 30522, Batch: batch, SeqLen: seqLen,
	})
}

// TransformerCustom builds a hybrid-parallel encoder workload from an
// arbitrary configuration.
func TransformerCustom(m compute.Model, c TransformerConfig) workload.Definition {
	dModel := c.DModel
	dFF := c.DFF
	heads := c.Heads
	vocab := c.Vocab
	batch, seqLen := c.Batch, c.SeqLen
	tokens := batch * seqLen
	dHead := dModel / heads
	actBytes := int64(tokens) * int64(dModel) * GradBytes

	// The paper's hybrid setup (Fig. 13): data-parallel across the local
	// and horizontal dimensions, model-parallel across the vertical one.
	// Activation and input-gradient exchanges therefore stay within the
	// vertical dimension, weight gradients within local+horizontal.
	const (
		modelScope = workload.Scope("vertical")
		dataScope  = workload.Scope("local+horizontal")
	)

	def := workload.Definition{Name: c.Name, Parallelism: workload.HybridParallel}

	// Embedding: a lookup (negligible GEMM), large weight-gradient
	// all-reduce for the table.
	def.Layers = append(def.Layers, workload.Layer{
		Name:       "embedding",
		FwdCompute: m.LayerCycles(), IGCompute: m.LayerCycles(),
		WGCompute:   m.LayerCycles(compute.GEMM{M: vocab / 16, K: batch, N: dModel}),
		WGComm:      collectives.AllReduce,
		WGScope:     dataScope,
		WGBytes:     int64(vocab) * int64(dModel) * GradBytes,
		UpdatePerKB: defaultUpdatePerKB,
	})

	// Six identical encoder layers.
	encGEMMs := []compute.GEMM{
		{M: tokens, K: dModel, N: 3 * dModel},            // QKV projection
		{M: batch * heads * seqLen, K: dHead, N: seqLen}, // attention scores
		{M: batch * heads * seqLen, K: seqLen, N: dHead}, // attention context
		{M: tokens, K: dModel, N: dModel},                // output projection
		{M: tokens, K: dModel, N: dFF},                   // FFN up
		{M: tokens, K: dFF, N: dModel},                   // FFN down
	}
	params := int64(dModel)*int64(3*dModel) + int64(dModel)*int64(dModel) +
		2*int64(dModel)*int64(dFF)
	var fwd, igc, wgc uint64
	for _, g := range encGEMMs {
		f, ig, wg := compute.TrainingGEMMs(g)
		fwd += m.GEMMCycles(f)
		igc += m.GEMMCycles(ig)
		wgc += m.GEMMCycles(wg)
	}
	fwd += m.LayerCycles()
	igc += m.LayerCycles()
	wgc += m.LayerCycles()
	for i := 1; i <= c.Layers; i++ {
		def.Layers = append(def.Layers, workload.Layer{
			Name:       fmt.Sprintf("encoder%d", i),
			FwdCompute: fwd, IGCompute: igc, WGCompute: wgc,
			FwdComm: collectives.AllGather, FwdScope: modelScope, FwdBytes: actBytes,
			IGComm: collectives.AllReduce, IGScope: modelScope, IGBytes: actBytes,
			WGComm: collectives.AllReduce, WGScope: dataScope, WGBytes: params * GradBytes,
			UpdatePerKB: defaultUpdatePerKB,
		})
	}

	// Classifier over the vocabulary.
	f, ig, wg := compute.TrainingGEMMs(compute.GEMM{M: tokens, K: dModel, N: vocab})
	def.Layers = append(def.Layers, workload.Layer{
		Name:       "classifier",
		FwdCompute: m.LayerCycles(f), IGCompute: m.LayerCycles(ig), WGCompute: m.LayerCycles(wg),
		WGComm:      collectives.AllReduce,
		WGScope:     dataScope,
		WGBytes:     int64(dModel) * int64(vocab) * GradBytes,
		UpdatePerKB: defaultUpdatePerKB,
	})
	return def
}

// DLRM returns a recommendation-model workload in the style of Naumov et
// al. 2019: a bottom MLP over dense features, distributed embedding tables
// whose lookups require an all-to-all in the forward pass and another for
// the gradients (§III-B: "the usage of all-to-all is specific to certain
// DNNs that have distributed key/value tables"), a feature-interaction
// layer, and a top MLP. MLP weights are data-parallel (all-reduce).
func DLRM(m compute.Model, batch int) workload.Definition {
	const (
		denseIn = 13
		embDim  = 64
		tables  = 26
	)
	def := workload.Definition{Name: "DLRM", Parallelism: workload.HybridParallel}

	mlp := func(name string, in, out int, comm bool) workload.Layer {
		f, ig, wg := compute.TrainingGEMMs(compute.GEMM{M: batch, K: in, N: out})
		l := workload.Layer{
			Name:       name,
			FwdCompute: m.LayerCycles(f), IGCompute: m.LayerCycles(ig), WGCompute: m.LayerCycles(wg),
			UpdatePerKB: defaultUpdatePerKB,
		}
		if comm {
			l.WGComm = collectives.AllReduce
			l.WGBytes = int64(in) * int64(out) * GradBytes
		}
		return l
	}
	def.Layers = append(def.Layers,
		mlp("bot_mlp1", denseIn, 512, true),
		mlp("bot_mlp2", 512, 256, true),
		mlp("bot_mlp3", 256, embDim, true),
	)

	// Embedding exchange: every sample needs all tables' vectors, but
	// tables are sharded across NPUs -> all-to-all of the looked-up
	// vectors forward, and of their gradients backward.
	lookupBytes := int64(batch) * tables * embDim * GradBytes
	def.Layers = append(def.Layers, workload.Layer{
		Name:       "embeddings",
		FwdCompute: m.LayerCycles(), IGCompute: m.LayerCycles(), WGCompute: m.LayerCycles(),
		FwdComm: collectives.AllToAll, FwdBytes: lookupBytes,
		IGComm: collectives.AllToAll, IGBytes: lookupBytes,
		UpdatePerKB: defaultUpdatePerKB,
	})

	interIn := embDim + tables*(tables+1)/2
	def.Layers = append(def.Layers,
		mlp("interaction", embDim*tables, interIn, false),
		mlp("top_mlp1", interIn, 512, true),
		mlp("top_mlp2", 512, 256, true),
		mlp("top_mlp3", 256, 1, true),
	)
	return def
}

// ResNet50ForwardMACs reports the forward-pass MAC count per sample of
// the ResNet-50 layer table (excluding the projection shortcuts, which
// are folded into parameter counts only) — a calibration aid pinning the
// table against the published ~4.1 GMac figure.
func ResNet50ForwardMACs(batch int) int64 {
	specs := resnet50Specs()
	var macs int64
	for _, c := range specs {
		g := c.fwdGEMM(batch)
		macs += int64(g.M) * int64(g.K) * int64(g.N)
	}
	macs += int64(batch) * 2048 * 1000
	return macs / int64(batch)
}

// VGG16 returns the data-parallel VGG-16 workload (Simonyan & Zisserman
// 2014): 13 convolutions and 3 fully-connected layers with ~138M
// parameters — the classic gradient-heavy CNN whose all-reduce volume
// dwarfs ResNet-50's.
func VGG16(m compute.Model, batch int) workload.Definition {
	def := workload.Definition{Name: "VGG-16", Parallelism: workload.DataParallel}
	type block struct{ convs, cout, inH int }
	blocks := []block{
		{2, 64, 224}, {2, 128, 112}, {3, 256, 56}, {3, 512, 28}, {3, 512, 14},
	}
	cin := 3
	n := 0
	for _, b := range blocks {
		for c := 0; c < b.convs; c++ {
			n++
			def.Layers = append(def.Layers, convLayer(m, convSpec{
				name: fmt.Sprintf("conv%d", n), inH: b.inH,
				cin: cin, k: 3, cout: b.cout, stride: 1,
			}, batch))
			cin = b.cout
		}
	}
	fc := func(name string, in, out int) workload.Layer {
		f, ig, wg := compute.TrainingGEMMs(compute.GEMM{M: batch, K: in, N: out})
		return workload.Layer{
			Name:       name,
			FwdCompute: m.LayerCycles(f), IGCompute: m.LayerCycles(ig), WGCompute: m.LayerCycles(wg),
			WGComm:      collectives.AllReduce,
			WGBytes:     (int64(in)*int64(out) + int64(out)) * GradBytes,
			UpdatePerKB: defaultUpdatePerKB,
		}
	}
	def.Layers = append(def.Layers,
		fc("fc6", 512*7*7, 4096),
		fc("fc7", 4096, 4096),
		fc("fc8", 4096, 1000),
	)
	return def
}

// ResNet50ActivationBytes returns each ResNet-50 layer's output activation
// size in bytes (batch x outH^2 x channels x GradBytes; the classifier
// emits batch x 1000 logits) — the stage-boundary tensor sizes for
// pipeline-parallel partitioning.
func ResNet50ActivationBytes(batch int) []int64 {
	specs := resnet50Specs()
	out := make([]int64, 0, len(specs)+1)
	for _, c := range specs {
		o := int64(c.outH())
		out = append(out, int64(batch)*o*o*int64(c.cout)*GradBytes)
	}
	out = append(out, int64(batch)*1000*GradBytes)
	return out
}
