package models

import (
	"bytes"
	"testing"

	"astrasim/internal/collectives"
	"astrasim/internal/compute"
	"astrasim/internal/workload"
)

func TestResNet50Shape(t *testing.T) {
	def := ResNet50(compute.Default(), 32)
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	if def.Parallelism != workload.DataParallel {
		t.Errorf("parallelism = %v, want DATA", def.Parallelism)
	}
	// conv1 + 16 bottlenecks x 3 + fc = 50 layers.
	if len(def.Layers) != 50 {
		t.Fatalf("layers = %d, want 50", len(def.Layers))
	}
	// Total parameters ~25.6M (He et al. 2015).
	var params int64
	for _, l := range def.Layers {
		params += l.WGBytes / GradBytes
	}
	if params < 25_000_000 || params > 26_500_000 {
		t.Errorf("total params = %d, want ~25.6M", params)
	}
	// Data parallel: no forward or input-gradient communication
	// (Table I), every layer all-reduces weight gradients.
	for i, l := range def.Layers {
		if l.FwdComm != collectives.None || l.IGComm != collectives.None {
			t.Errorf("layer %d (%s): unexpected fwd/ig comm", i, l.Name)
		}
		if l.WGComm != collectives.AllReduce || l.WGBytes <= 0 {
			t.Errorf("layer %d (%s): missing WG all-reduce", i, l.Name)
		}
		if l.FwdCompute == 0 || l.IGCompute == 0 || l.WGCompute == 0 {
			t.Errorf("layer %d (%s): zero compute", i, l.Name)
		}
	}
}

func TestResNet50LargestGradient(t *testing.T) {
	def := ResNet50(compute.Default(), 32)
	var maxBytes int64
	var name string
	for _, l := range def.Layers {
		if l.WGBytes > maxBytes {
			maxBytes, name = l.WGBytes, l.Name
		}
	}
	// conv5's first 1x1 plus the folded 1024->2048 projection shortcut:
	// (1024*512 + 1024*2048) * 4 B = 10 MB.
	if name != "conv5_aa" || maxBytes != (1024*512+1024*2048)*GradBytes {
		t.Errorf("largest gradient = %s (%d bytes), want conv5_aa at 10 MB", name, maxBytes)
	}
	// The classifier all-reduces 2048*1000 weights ~8.2 MB.
	fc := def.Layers[len(def.Layers)-1]
	if fc.Name != "fc1000" || fc.WGBytes != (2048*1000+1000)*GradBytes {
		t.Errorf("fc1000 gradient = %d bytes, want ~8.2MB", fc.WGBytes)
	}
}

func TestResNet50BatchScalesCompute(t *testing.T) {
	m := compute.Default()
	small := ResNet50(m, 16)
	big := ResNet50(m, 64)
	if big.TotalComputeCycles() <= small.TotalComputeCycles() {
		t.Error("larger batch should cost more compute")
	}
	// Gradient sizes are batch independent.
	for i := range small.Layers {
		if small.Layers[i].WGBytes != big.Layers[i].WGBytes {
			t.Errorf("layer %d gradient size depends on batch", i)
		}
	}
}

func TestTransformerShape(t *testing.T) {
	def := Transformer(compute.Default(), 32, 128)
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	if def.Parallelism != workload.HybridParallel {
		t.Errorf("parallelism = %v, want HYBRID", def.Parallelism)
	}
	if len(def.Layers) != 8 {
		t.Fatalf("layers = %d, want 8 (embedding + 6 encoders + classifier)", len(def.Layers))
	}
	// Encoders (1..6) are structurally identical (Fig. 13: "layers 1-6
	// are the same structurally").
	for i := 2; i <= 6; i++ {
		if def.Layers[i] != def.Layers[1] &&
			(def.Layers[i].FwdBytes != def.Layers[1].FwdBytes ||
				def.Layers[i].FwdCompute != def.Layers[1].FwdCompute) {
			t.Errorf("encoder %d differs from encoder 1", i)
		}
	}
	// Hybrid: encoders communicate in all three passes.
	enc := def.Layers[1]
	if enc.FwdComm != collectives.AllGather || enc.IGComm != collectives.AllReduce ||
		enc.WGComm != collectives.AllReduce {
		t.Errorf("encoder comm = %v/%v/%v", enc.FwdComm, enc.IGComm, enc.WGComm)
	}
	// Embedding has no activation communication.
	if def.Layers[0].FwdComm != collectives.None {
		t.Error("embedding should not communicate activations")
	}
}

func TestDLRMShape(t *testing.T) {
	def := DLRM(compute.Default(), 512)
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	var a2aLayers int
	for _, l := range def.Layers {
		if l.FwdComm == collectives.AllToAll {
			a2aLayers++
			if l.IGComm != collectives.AllToAll {
				t.Errorf("embedding layer %s must all-to-all gradients too", l.Name)
			}
		}
	}
	if a2aLayers != 1 {
		t.Errorf("all-to-all layers = %d, want 1 (the embedding exchange)", a2aLayers)
	}
}

func TestDefinitionsSerializeAndParse(t *testing.T) {
	m := compute.Default()
	for _, def := range []workload.Definition{
		ResNet50(m, 32), Transformer(m, 32, 128), DLRM(m, 512),
	} {
		var buf bytes.Buffer
		if err := workload.Write(&buf, def); err != nil {
			t.Fatalf("%s: write: %v", def.Name, err)
		}
		got, err := workload.Parse(def.Name, &buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", def.Name, err)
		}
		if len(got.Layers) != len(def.Layers) || got.Parallelism != def.Parallelism {
			t.Errorf("%s: round trip mismatch", def.Name)
		}
		for i := range def.Layers {
			if got.Layers[i] != def.Layers[i] {
				t.Errorf("%s layer %d: %+v != %+v", def.Name, i, got.Layers[i], def.Layers[i])
			}
		}
	}
}

func TestComputeScaleAffectsModelCycles(t *testing.T) {
	m := compute.Default()
	m.Scale = 2
	fast := ResNet50(m, 32)
	base := ResNet50(compute.Default(), 32)
	if fast.TotalComputeCycles() >= base.TotalComputeCycles() {
		t.Error("2x compute model should produce fewer cycles")
	}
}

// Calibration: the ResNet-50 table's forward MACs per sample must match
// the published ~4.1 GMac (3.73 GMac here, since the four projection
// shortcuts contribute parameters but are folded out of compute).
func TestResNet50ForwardMACs(t *testing.T) {
	macs := ResNet50ForwardMACs(32)
	if macs < 3_600_000_000 || macs > 3_900_000_000 {
		t.Errorf("forward MACs/sample = %d, want ~3.73G", macs)
	}
}

func TestVGG16Shape(t *testing.T) {
	def := VGG16(compute.Default(), 32)
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(def.Layers) != 16 {
		t.Fatalf("layers = %d, want 16", len(def.Layers))
	}
	var params int64
	for _, l := range def.Layers {
		params += l.WGBytes / GradBytes
	}
	// Published VGG-16 parameter count: ~138.4M.
	if params < 137_000_000 || params > 139_500_000 {
		t.Errorf("total params = %d, want ~138.4M", params)
	}
	// fc6 alone holds 102.8M parameters.
	var fc6 int64
	for _, l := range def.Layers {
		if l.Name == "fc6" {
			fc6 = l.WGBytes / GradBytes
		}
	}
	if fc6 < 102_000_000 || fc6 > 103_500_000 {
		t.Errorf("fc6 params = %d, want ~102.8M", fc6)
	}
}

func TestBERTLargeShape(t *testing.T) {
	def := BERTLarge(compute.Default(), 8, 128)
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
	// embedding + 24 encoders + classifier.
	if len(def.Layers) != 26 {
		t.Fatalf("layers = %d, want 26", len(def.Layers))
	}
	// Per-encoder parameters: QKV (1024x3072) + out (1024x1024) + FFN
	// (2 x 1024x4096) = ~12.6M.
	enc := def.Layers[1]
	if p := enc.WGBytes / GradBytes; p < 12_500_000 || p > 12_700_000 {
		t.Errorf("encoder params = %d, want ~12.6M", p)
	}
	// BERT-Large total ~340M params (embeddings + encoders + head).
	var params int64
	for _, l := range def.Layers {
		params += l.WGBytes / GradBytes
	}
	if params < 330_000_000 || params > 370_000_000 {
		t.Errorf("total params = %d, want ~340M", params)
	}
}

func TestTransformerCustomMatchesBase(t *testing.T) {
	base := Transformer(compute.Default(), 16, 64)
	custom := TransformerCustom(compute.Default(), TransformerConfig{
		Name: "Transformer", DModel: 512, DFF: 2048, Heads: 8, Layers: 6,
		Vocab: 8192, Batch: 16, SeqLen: 64,
	})
	if len(base.Layers) != len(custom.Layers) {
		t.Fatalf("layer counts differ: %d vs %d", len(base.Layers), len(custom.Layers))
	}
	for i := range base.Layers {
		if base.Layers[i] != custom.Layers[i] {
			t.Errorf("layer %d differs: %+v vs %+v", i, base.Layers[i], custom.Layers[i])
		}
	}
}
