package astrasim_test

import (
	"fmt"
	"log"
	"strings"

	"astrasim"
)

// The simplest use: one collective on a Table IV platform.
func ExamplePlatform_RunCollective() {
	p, err := astrasim.NewTorusPlatform(4, 4, 4, astrasim.WithAlgorithm(astrasim.Enhanced))
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.RunCollective(astrasim.AllReduce, 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Duration(), "cycles") // 1 cycle = 1 ns at 1 GHz
	// Output: 315214 cycles
}

// End-to-end training with exposed-communication accounting.
func ExamplePlatform_Train() {
	p, err := astrasim.NewTorusPlatform(2, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Train(astrasim.DLRM(256), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d layers simulated; total %d cycles\n", len(res.Layers), res.TotalCycles)
	// Output: 8 layers simulated; total 98733 cycles
}

// Workload files use the paper's Fig. 8 text format.
func ExampleParseWorkload() {
	input := `DATA
1
conv1
5000 5000 5000
NONE NONE ALLREDUCE
0 0 65536
1
`
	def, err := astrasim.ParseWorkload("tiny", strings.NewReader(input))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(def.Parallelism, len(def.Layers), def.Layers[0].Name)
	// Output: DATA 1 conv1
}
