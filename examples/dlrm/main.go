// DLRM-style recommendation model on the hierarchical alltoall topology.
// Distributed embedding tables make this workload all-to-all bound (paper
// §III-B: "the usage of all-to-all is specific to certain DNNs that have
// distributed key/value tables"), which is exactly what the alltoall
// topology — modeled after Facebook's Zion — is built for. This example
// compares the same workload on an alltoall platform and on a torus of
// equal size.
package main

import (
	"fmt"
	"log"

	"astrasim"
)

func main() {
	def := astrasim.DLRM(512)

	// Equal inter-package link budget: 4 switch links per NPU on the
	// alltoall platform vs 2 bidirectional rings (4 unidirectional
	// links) on the torus.
	a2a, err := astrasim.NewAllToAllPlatform(4, 4, astrasim.WithGlobalSwitches(4))
	if err != nil {
		log.Fatal(err)
	}
	torus, err := astrasim.NewTorusPlatform(4, 4, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training %s (batch 512) on two 16-NPU platforms, 2 iterations each\n\n", def.Name)
	for _, p := range []*astrasim.Platform{a2a, torus} {
		res, err := p.Train(def, 2)
		if err != nil {
			log.Fatal(err)
		}
		var emb astrasim.LayerStats
		for _, l := range res.Layers {
			if l.Name == "embeddings" {
				emb = l
			}
		}
		fmt.Printf("%-16s total %10d cycles | embedding all-to-all comm %9d cycles, exposed %9d\n",
			p.Name(), res.TotalCycles, emb.TotalCommCycles(), emb.ExposedCycles)
	}
	fmt.Println("\nThe alltoall fabric delivers each embedding exchange in a single")
	fmt.Println("switch hop per pair instead of relaying around rings.")
}
