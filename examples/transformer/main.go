// Hybrid-parallel Transformer training on a 2x2x2 torus — the scenario of
// the paper's Fig. 13. Hybrid parallelism (data-parallel across the local
// and horizontal dimensions, model-parallel across the vertical one) makes
// every encoder layer communicate in all three passes: output activations
// in the forward pass, input gradients and weight gradients in
// back-propagation. The strict activation/input-gradient dependencies
// leave far less room for overlap than data parallelism.
package main

import (
	"fmt"
	"log"

	"astrasim"
)

func main() {
	p, err := astrasim.NewTorusPlatform(2, 2, 2, astrasim.WithAlgorithm(astrasim.Enhanced))
	if err != nil {
		log.Fatal(err)
	}
	def := astrasim.Transformer(32, 128)
	fmt.Printf("training %s (%s parallel) on %s, 2 iterations...\n\n",
		def.Name, def.Parallelism, p.Name())

	res, err := p.Train(def, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %12s %12s %12s %12s %10s\n",
		"layer", "fwd-comm", "ig-comm", "wg-comm", "total-comm", "exposed")
	for _, l := range res.Layers {
		fmt.Printf("%-12s %12d %12d %12d %12d %10d\n",
			l.Name, l.FwdCommCycles, l.IGCommCycles, l.WGCommCycles,
			l.TotalCommCycles(), l.ExposedCycles)
	}
	fmt.Printf("\ntotal: %d cycles; exposed communication %.1f%% of runtime\n",
		res.TotalCycles, 100*res.ExposedRatio())
	fmt.Println("\nLayers 1-6 are structurally identical, so their forward-activation")
	fmt.Println("communication is uniform (paper Fig. 13).")
}
