// Scale-out extension: the paper's concluding future work is extending
// ASTRA-SIM beyond the scale-up domain to an ethernet-like scale-out
// fabric with a transport layer. This example trains data-parallel
// ResNet-50 on 32 NPUs arranged two ways:
//
//  1. one large scale-up torus (2x4x4), and
//  2. four pods of 2x2x2 joined by a 100 Gb/s scale-out spine,
//
// showing how crossing the slow, high-latency spine turns hidden
// gradient communication into exposed stall time.
package main

import (
	"fmt"
	"log"

	"astrasim"
)

func main() {
	def := astrasim.ResNet50(32)

	scaleUp, err := astrasim.NewTorusPlatform(2, 4, 4, astrasim.WithAlgorithm(astrasim.Enhanced))
	if err != nil {
		log.Fatal(err)
	}
	scaleOut, err := astrasim.NewScaleOutPlatform(2, 2, 2, 4,
		astrasim.WithAlgorithm(astrasim.Enhanced), astrasim.WithGlobalSwitches(2))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("training %s (data parallel) on two 32-NPU organizations, 2 iterations each\n\n", def.Name)
	for _, p := range []*astrasim.Platform{scaleUp, scaleOut} {
		res, err := p.Train(def, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-45s total %9d cycles | raw comm %9d | exposed %8d (%.1f%%)\n",
			p.Name(), res.TotalCycles, res.TotalComm(), res.TotalExposed(),
			100*res.ExposedRatio())
	}
	fmt.Println("\nThe spine's ~12.5 GB/s links and microsecond latency make the")
	fmt.Println("scale-out phase the bottleneck of every weight-gradient all-reduce;")
	fmt.Println("the same gradients that hid under back-propagation inside one torus")
	fmt.Println("now stall the next iteration's forward pass.")
}
