// Quickstart: simulate one 64 MB all-reduce on a 4x4x4 hierarchical torus
// (64 NPUs, Table IV parameters) with both the baseline 3-phase and the
// enhanced 4-phase algorithm, and print the per-phase breakdown.
package main

import (
	"fmt"
	"log"

	"astrasim"
)

func main() {
	const size = 64 << 20
	for _, alg := range []astrasim.Algorithm{astrasim.Baseline, astrasim.Enhanced} {
		p, err := astrasim.NewTorusPlatform(4, 4, 4, astrasim.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		res, err := p.RunCollective(astrasim.AllReduce, size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("all-reduce of 64MB on %s, %v algorithm: %d cycles (%.1f us)\n",
			p.Name(), alg, res.Duration(), float64(res.Duration())/1000)
		for i, ph := range res.Phases() {
			fmt.Printf("  phase %d: %-42v queue %9.0f  network %9.0f cycles\n",
				i+1, ph, res.AvgQueueDelay(i+1), res.AvgNetworkDelay(i+1))
		}
		fmt.Println()
	}
	fmt.Println("The enhanced algorithm reduce-scatters inside each package first,")
	fmt.Println("sending 4x less traffic over the slow inter-package links (paper §III-D).")
}
