// Data-parallel ResNet-50 training on a 2x4x4 hierarchical torus — the
// scenario of the paper's Figs. 14-16. Runs two training iterations with a
// local minibatch of 32, then prints the ten layers with the largest
// communication time and the global compute/exposed-communication split.
package main

import (
	"fmt"
	"log"
	"sort"

	"astrasim"
)

func main() {
	p, err := astrasim.NewTorusPlatform(2, 4, 4, astrasim.WithAlgorithm(astrasim.Enhanced))
	if err != nil {
		log.Fatal(err)
	}
	def := astrasim.ResNet50(32)
	fmt.Printf("training %s (%d layers, %s parallel) on %s, 2 iterations...\n",
		def.Name, len(def.Layers), def.Parallelism, p.Name())

	res, err := p.Train(def, 2)
	if err != nil {
		log.Fatal(err)
	}

	layers := append([]astrasim.LayerStats(nil), res.Layers...)
	sort.Slice(layers, func(i, j int) bool {
		return layers[i].TotalCommCycles() > layers[j].TotalCommCycles()
	})
	fmt.Println("\nheaviest communicators (weight-gradient all-reduce):")
	fmt.Printf("%-12s %12s %12s %12s\n", "layer", "compute", "comm", "exposed")
	for _, l := range layers[:10] {
		fmt.Printf("%-12s %12d %12d %12d\n", l.Name, l.ComputeCycles, l.TotalCommCycles(), l.ExposedCycles)
	}

	fmt.Printf("\ntotal training time: %d cycles (%.2f ms at 1 GHz)\n",
		res.TotalCycles, float64(res.TotalCycles)/1e6)
	fmt.Printf("compute:               %s of total\n",
		pct(float64(res.TotalCompute()), float64(res.TotalCycles)))
	fmt.Printf("exposed communication: %s of total\n",
		pct(float64(res.TotalExposed()), float64(res.TotalCycles)))
	fmt.Println("\nMost weight-gradient all-reduces hide under back-propagation compute;")
	fmt.Println("the early layers' gradients are the ones the next iteration waits for (§III-E).")
}

func pct(a, b float64) string { return fmt.Sprintf("%.1f%%", 100*a/b) }
