// Graceful degradation: run the same 64 MB enhanced all-reduce on a
// 4x4x4 torus three ways — fault-free, with the inter-package fabric at
// half bandwidth, and on a lossy fabric (0.1% inter-package packet drops)
// recovered by the timeout/retransmit protocol — and compare completion
// time and recovery traffic. Fault plans are declarative JSON
// (DESIGN.md §8); this example builds them in code via the same schema.
package main

import (
	"fmt"
	"log"
	"strings"

	"astrasim"
)

func main() {
	const size = 64 << 20
	p, err := astrasim.NewTorusPlatform(4, 4, 4, astrasim.WithAlgorithm(astrasim.Enhanced))
	if err != nil {
		log.Fatal(err)
	}
	p.SetAudit(true) // byte conservation must hold exactly, even under loss

	run := func(name string, plan *astrasim.FaultPlan) *astrasim.CollectiveRun {
		if err := p.SetFaultPlan(plan); err != nil {
			log.Fatal(err)
		}
		res, err := p.RunCollectiveDetailed(astrasim.AllReduce, size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9d cycles", name, res.Duration())
		if res.DroppedPackets > 0 {
			fmt.Printf("   (%d packets dropped, %.1f MB retransmitted)",
				res.DroppedPackets, float64(res.RetransmittedBytes)/(1<<20))
		}
		fmt.Println()
		return res
	}

	base := run("fault-free", nil)

	// Half-bandwidth inter-package links for the whole run.
	degraded, err := astrasim.ParseFaultPlan(strings.NewReader(`{
		"degraded_links": [{"class": "inter", "start": 0, "end": 100000000,
		                    "bandwidth_factor": 0.5}]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	deg := run("inter links at 1/2 BW", degraded)

	// 0.1% packet loss on inter-package links, timeout/retransmit recovery.
	lossy, err := astrasim.ParseFaultPlan(strings.NewReader(`{
		"seed": 42,
		"drops": [{"class": "inter", "probability": 0.001}],
		"retry": {"timeout": 10000, "backoff": 2, "max_retries": 30}
	}`))
	if err != nil {
		log.Fatal(err)
	}
	drop := run("0.1% inter packet loss", lossy)

	fmt.Println()
	fmt.Printf("Halving the bottleneck links costs %.2fx; losing 1 packet in 1000 costs %.2fx:\n",
		float64(deg.Duration())/float64(base.Duration()),
		float64(drop.Duration())/float64(base.Duration()))
	fmt.Println("every drop voids a whole in-flight message and stalls its chunk for the")
	fmt.Println("detection timeout, so loss hurts far more than the raw bytes suggest.")
	fmt.Println("The audit layer verified exact byte conservation on all three runs,")
	fmt.Println("counting retransmitted goodput in its own ledger (DESIGN.md §8).")
}
