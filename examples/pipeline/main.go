// Pipeline parallelism — the third strategy §III-A names alongside data
// and model parallelism. ResNet-50 is cut into 8 compute-balanced stages,
// one per NPU of a 1x8x1 ring; the minibatch flows through as
// microbatches, activations crossing each stage boundary point-to-point.
// The example sweeps the microbatch count to show the GPipe bubble
// shrinking, then compares against data-parallel training on the same 8
// NPUs.
package main

import (
	"fmt"
	"log"

	"astrasim"
)

func main() {
	const batch = 32
	def := astrasim.ResNet50(batch)
	acts := astrasim.ResNet50ActivationBytes(batch)

	p, err := astrasim.NewTorusPlatform(1, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	boundaries := astrasim.AutoPartition(def, 8)
	nodes := make([]astrasim.NodeID, 8)
	for i := range nodes {
		nodes[i] = astrasim.NodeID(i)
	}

	// Throughput-normalized comparison: the pipeline processes one
	// 32-sample minibatch per iteration across all 8 NPUs, while data
	// parallelism processes 8 x 32; compare cycles per sample.
	fmt.Println("ResNet-50 pipelined over 8 stages on a 1x8x1 ring (2 iterations):")
	fmt.Printf("%-14s %14s %10s %16s\n", "microbatches", "total cycles", "bubble", "cycles/sample")
	for _, m := range []int{1, 2, 4, 8, 16} {
		bb := make([]int64, len(boundaries))
		for i, b := range boundaries {
			bb[i] = acts[b-1] / int64(m) // per-microbatch boundary tensor
			if bb[i] < 1 {
				bb[i] = 1
			}
		}
		res, err := p.TrainPipeline(def, astrasim.PipelineConfig{
			Boundaries:    boundaries,
			StageNodes:    nodes,
			Microbatches:  m,
			BoundaryBytes: bb,
		}, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14d %14d %9.1f%% %16.0f\n",
			m, res.TotalCycles, 100*res.BubbleRatio,
			float64(res.TotalCycles)/(2*batch))
	}

	// Same partition under the 1F1B schedule at 16 microbatches.
	bb16 := make([]int64, len(boundaries))
	for i, b := range boundaries {
		bb16[i] = acts[b-1] / 16
		if bb16[i] < 1 {
			bb16[i] = 1
		}
	}
	ofob, err := p.TrainPipeline(def, astrasim.PipelineConfig{
		Boundaries:    boundaries,
		StageNodes:    nodes,
		Microbatches:  16,
		BoundaryBytes: bb16,
		Schedule:      astrasim.OneFOneBSchedule,
	}, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %14d %9.1f%% %16.0f   (1F1B schedule)\n",
		"16", ofob.TotalCycles, 100*ofob.BubbleRatio,
		float64(ofob.TotalCycles)/(2*batch))

	dp, err := p.Train(def, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndata-parallel on the same 8 NPUs: %d cycles for 8x the samples"+
		" -> %.0f cycles/sample (exposed comm %.1f%%)\n",
		dp.TotalCycles, float64(dp.TotalCycles)/(2*batch*8), 100*dp.ExposedRatio())
	fmt.Println("\nMore microbatches shrink the pipeline fill/drain bubble, but pure")
	fmt.Println("pipelining still idles stages; per sample, data parallelism keeps")
	fmt.Println("every NPU busy at the price of gradient all-reduces (here hidden).")
}
