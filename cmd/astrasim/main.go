// Command astrasim is the end-to-end simulator CLI: it runs the training
// loop of a DNN workload over a simulated scale-up fabric and reports
// layer-wise compute, communication, and exposed-communication time.
//
// The workload is either a Fig. 8-format description file (-workload
// path/to/file) or one of the built-in models (-workload resnet50,
// transformer, dlrm). System and network parameters mirror Table III of
// the paper; defaults are Table IV.
//
// Examples:
//
//	astrasim -workload resnet50 -topology 2x4x4 -num-passes 2
//	astrasim -workload transformer -topology 2x2x2 -scheduling-policy LIFO
//	astrasim -workload my_dnn.txt -topology a2a:4x4 -switches 2
//	astrasim -workload resnet50 -faults examples/faults/lossy.json
//	astrasim -graph workloads/microbench.graph.json -topology 2x2x2
//	astrasim -workload dlrm -graph-dump dlrm.graph.json
//	astrasim -model workloads/models/tinylm.model.json -plan workloads/models/zero3_tp2_pp2.plan.json -topology hier:sw4,fc4,ring4
//
// -faults applies a JSON fault plan (degraded links, outages, stragglers,
// packet drops with retransmit; see DESIGN.md §8) to the training run and
// reports the dropped-packet and retransmit counters.
//
// -graph replays an execution-trace DAG (JSON, DESIGN.md §10) through the
// dependency-driven graph engine instead of the layer-wise training loop;
// -graph-dump compiles the selected -workload into that format and exits.
//
// -model spec.json -plan plan.json compiles a versioned model spec under
// a parallelism plan (dp/tp/pp/ep degrees, ZeRO stage, microbatches,
// interleaving factor; DESIGN.md §15) into an execution graph unrolled
// over -num-passes training steps and replays it — or writes the graph
// out when combined with -graph-dump.
// -audit attaches the invariant auditor to the run and fails loudly on
// any conservation or quiescence violation.
//
// -backend selects the network transport: packet (congestion-aware,
// default) or fast (congestion-unaware analytical mode; see DESIGN.md
// §11). -faults requires the packet backend.
//
// -intra-parallel N partitions the packet network across N shard-pool
// workers for intra-run parallel simulation (DESIGN.md §13). Results are
// byte-identical to the serial engine at any worker count; 0 (the
// default) keeps the serial engine. Incompatible with -faults.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"astrasim/internal/audit"
	"astrasim/internal/cli"
	"astrasim/internal/compute"
	"astrasim/internal/config"
	"astrasim/internal/faults"
	"astrasim/internal/graph"
	"astrasim/internal/modelgen"
	"astrasim/internal/models"
	"astrasim/internal/report"
	"astrasim/internal/system"
	"astrasim/internal/trace"
	"astrasim/internal/workload"
)

func main() {
	wl := flag.String("workload", "resnet50", "workload file path, or builtin: resnet50|transformer|dlrm")
	passes := flag.Int("num-passes", 2, "forward/backward iterations to simulate")
	batch := flag.Int("batch", 32, "local minibatch size (builtin workloads)")
	seqLen := flag.Int("seq-len", 128, "sequence length (builtin transformer)")
	topoFlag := flag.String("topology", "2x4x4", "torus MxNxK, alltoall a2a:MxN, or composition hier:sw8,fc4,ring32")
	algFlag := flag.String("algorithm", "enhanced", "baseline or enhanced collective algorithm")
	policyFlag := flag.String("scheduling-policy", "LIFO", "LIFO or FIFO")
	switches := flag.Int("global-switches", 2, "global switches (alltoall topology)")
	localRings := flag.Int("local-rings", 2, "unidirectional local rings")
	horizontalRings := flag.Int("horizontal-rings", 2, "bidirectional horizontal rings")
	verticalRings := flag.Int("vertical-rings", 2, "bidirectional vertical rings")
	splits := flag.Int("preferred-set-splits", config.DefaultSystem().PreferredSetSplits, "chunks per collective set")
	endpointDelay := flag.Uint64("endpoint-delay", 10, "NMU delay per received message (cycles)")
	computeScale := flag.Float64("compute-scale", 1, "NPU compute-power multiplier (builtin workloads)")
	localBW := flag.Float64("local-link-bw", 200, "intra-package link bandwidth (GB/s)")
	packageBW := flag.Float64("package-link-bw", 25, "inter-package link bandwidth (GB/s)")
	pktCap := flag.Int("max-packets-per-message", 8, "packet-event cap per message (0 = exact)")
	writeWorkload := flag.String("write-workload", "", "write the selected workload as a Fig. 8 file and exit")
	faultsFlag := flag.String("faults", "", "JSON fault plan for the run (see DESIGN.md §8)")
	traceOut := flag.String("trace", "", "write a Chrome trace (chrome://tracing / Perfetto) of the run to this file")
	graphFlag := flag.String("graph", "", "replay this execution graph (JSON, DESIGN.md §10) instead of the training loop")
	modelFlag := flag.String("model", "", "model spec (JSON, DESIGN.md §15) to compile with -plan instead of -workload")
	planFlag := flag.String("plan", "", "parallelism plan (JSON, DESIGN.md §15) for -model")
	graphDump := flag.String("graph-dump", "", "compile the selected -workload into an execution graph, write it here, and exit")
	auditFlag := flag.Bool("audit", false, "attach the invariant auditor and fail on any violation")
	backendFlag := flag.String("backend", "packet", "network backend: packet (congestion-aware) or fast (congestion-unaware analytical)")
	intraParallel := flag.Int("intra-parallel", 0, "shard-pool workers for intra-run parallel packet simulation (0 = serial engine; results are identical at any count)")
	remoteMem := flag.String("remote-mem", "", "disaggregated memory tier, \"bw=<bytes/cycle>[,lat=<cycles>]\" (empty = disabled)")
	flag.Parse()

	backend, err := config.ParseBackend(*backendFlag)
	if err != nil {
		fatal(err)
	}
	if *faultsFlag != "" && backend != config.PacketBackend {
		fatal(fmt.Errorf("-faults requires the packet backend; the %v backend does not model faults", backend))
	}
	if *faultsFlag != "" && *intraParallel > 0 {
		fatal(fmt.Errorf("-faults and -intra-parallel are mutually exclusive; fault injection needs the serial engine"))
	}

	if (*modelFlag == "") != (*planFlag == "") {
		fatal(fmt.Errorf("-model and -plan must be given together"))
	}
	if *modelFlag != "" && *graphFlag != "" {
		fatal(fmt.Errorf("-model and -graph are mutually exclusive"))
	}
	var modelGraph *graph.Graph
	if *modelFlag != "" {
		spec, err := modelgen.LoadSpec(*modelFlag)
		if err != nil {
			fatal(err)
		}
		mplan, err := modelgen.LoadPlan(*planFlag)
		if err != nil {
			fatal(err)
		}
		cm := compute.Default()
		cm.Scale = *computeScale
		if modelGraph, err = modelgen.Compile(spec, mplan, modelgen.Options{Steps: *passes, Compute: &cm}); err != nil {
			fatal(err)
		}
	}

	var def workload.Definition
	if *modelFlag == "" && (*graphFlag == "" || *graphDump != "") {
		if def, err = loadWorkload(*wl, *batch, *seqLen, *computeScale); err != nil {
			fatal(err)
		}
	}
	if *graphDump != "" {
		g := modelGraph
		if g == nil {
			if g, err = graph.FromDefinition(def, *passes); err != nil {
				fatal(err)
			}
		}
		fh, err := os.Create(*graphDump)
		if err != nil {
			fatal(err)
		}
		if err := graph.Write(fh, g); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d nodes, %d passes)\n", *graphDump, len(g.Nodes), g.Passes)
		return
	}
	if *writeWorkload != "" {
		fh, err := os.Create(*writeWorkload)
		if err != nil {
			fatal(err)
		}
		if err := workload.Write(fh, def); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d layers, %s)\n", *writeWorkload, len(def.Layers), def.Parallelism)
		return
	}

	cfg := config.DefaultSystem()
	cfg.Backend = backend
	cfg.IntraParallel = *intraParallel
	if cfg.Algorithm, err = config.ParseAlgorithm(*algFlag); err != nil {
		fatal(err)
	}
	if cfg.SchedulingPolicy, err = config.ParseSchedulingPolicy(*policyFlag); err != nil {
		fatal(err)
	}
	cfg.PreferredSetSplits = *splits
	cfg.EndpointDelay = *endpointDelay
	cfg.LocalRings, cfg.HorizontalRings, cfg.VerticalRings = *localRings, *horizontalRings, *verticalRings
	cfg.GlobalSwitches = *switches
	if *remoteMem != "" {
		if cfg.RemoteMemBandwidth, cfg.RemoteMemLatency, err = cli.ParseRemoteMem(*remoteMem); err != nil {
			fatal(err)
		}
	}

	topo, err := cli.BuildTopology(*topoFlag, cli.TopologyOptions{
		LocalRings:      *localRings,
		HorizontalRings: *horizontalRings,
		VerticalRings:   *verticalRings,
		GlobalSwitches:  *switches,
	}, &cfg)
	if err != nil {
		fatal(err)
	}

	net := config.DefaultNetwork()
	net.LocalLinkBandwidth = *localBW
	net.PackageLinkBandwidth = *packageBW
	net.MaxPacketsPerMessage = *pktCap

	inst, err := system.NewInstance(topo, cfg, net)
	if err != nil {
		fatal(err)
	}
	var plan *faults.Plan
	if *faultsFlag != "" {
		if plan, err = faults.Load(*faultsFlag); err != nil {
			fatal(err)
		}
		if err := faults.Apply(plan, inst); err != nil {
			fatal(err)
		}
	}
	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
		inst.Sys.Tracer = rec
	}
	var aud *audit.Auditor
	if *auditFlag {
		aud = audit.Attach(inst.Sys, inst.Net)
	}
	var res workload.Result
	var runName string
	if modelGraph != nil {
		runName = fmt.Sprintf("model %s (%d nodes)", modelGraph.Name, len(modelGraph.Nodes))
		if res, err = graph.Run(inst, modelGraph); err != nil {
			fatal(err)
		}
	} else if *graphFlag != "" {
		g, err := graph.Load(*graphFlag)
		if err != nil {
			fatal(err)
		}
		runName = fmt.Sprintf("graph %s (%d nodes)", g.Name, len(g.Nodes))
		if res, err = graph.Run(inst, g); err != nil {
			fatal(err)
		}
	} else {
		runName = fmt.Sprintf("workload %s (%s)", def.Name, def.Parallelism)
		tr, err := workload.NewTrainer(inst, def, *passes)
		if err != nil {
			fatal(err)
		}
		if res, err = tr.Run(); err != nil {
			fatal(err)
		}
	}
	if rec != nil {
		fh, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteJSON(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d spans)\n", *traceOut, rec.Len())
	}

	fmt.Printf("%s, %d passes on %s, %v algorithm, %v scheduling\n",
		runName, res.Passes, topo.Name(), cfg.Algorithm, cfg.SchedulingPolicy)
	t := report.New("layers", "per-layer results",
		"layer", "compute", "fwd-comm", "ig-comm", "wg-comm", "exposed")
	for _, l := range res.Layers {
		t.AddRow(l.Name,
			report.Int(int64(l.ComputeCycles)),
			report.Int(int64(l.FwdCommCycles)),
			report.Int(int64(l.IGCommCycles)),
			report.Int(int64(l.WGCommCycles)),
			report.Int(int64(l.ExposedCycles)))
	}
	if err := t.WriteASCII(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Printf("\ntotal: %d cycles (%.3f ms at 1 GHz)\n", res.TotalCycles, float64(res.TotalCycles)/1e6)
	fmt.Printf("compute: %d cycles (%s of total)\n", res.TotalCompute(),
		report.Percent(float64(res.TotalCompute())/float64(res.TotalCycles)))
	fmt.Printf("exposed communication: %d cycles (%s of total)\n", res.TotalExposed(),
		report.Percent(res.ExposedRatio()))
	fmt.Printf("raw communication (overlappable): %d cycles\n", res.TotalComm())
	if plan != nil {
		ds := inst.Net.DropStats()
		fmt.Printf("faults: %d packets dropped (%d bytes), %d retransmits (%d goodput bytes resent)\n",
			ds.DroppedPackets, ds.DroppedBytes, inst.Sys.Retransmits(), inst.Sys.RetransmittedBytes())
	}
	if aud != nil {
		if err := aud.Report().Err(); err != nil {
			fatal(err)
		}
		fmt.Println("audit: all invariants held")
	}
}

func loadWorkload(name string, batch, seqLen int, scale float64) (workload.Definition, error) {
	m := compute.Default()
	switch strings.ToLower(name) {
	case "resnet50", "resnet-50":
		return models.ResNet50(m, batch).ScaleCompute(scale), nil
	case "transformer":
		return models.Transformer(m, batch, seqLen).ScaleCompute(scale), nil
	case "dlrm":
		return models.DLRM(m, batch).ScaleCompute(scale), nil
	}
	fh, err := os.Open(name)
	if err != nil {
		return workload.Definition{}, fmt.Errorf("workload %q is not builtin and not readable: %w", name, err)
	}
	defer fh.Close()
	def, err := workload.Parse(name, fh)
	if err != nil {
		return workload.Definition{}, err
	}
	return def.ScaleCompute(scale), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "astrasim:", err)
	os.Exit(1)
}
