// Command sweep regenerates every figure of the paper's evaluation
// section (Figs. 9-18) and writes the rows/series as CSV files plus an
// aligned-text summary.
//
// Usage:
//
//	sweep [-fig all|fig09|fig10|...|fig18] [-out results] [-quick] [-parallel N] [-audit] [-faults plan.json] [-backend packet|fast] [-intra-parallel N]
//
// -backend selects the network transport for every simulation: packet
// (congestion-aware, the default — what the committed golden CSVs were
// recorded with) or fast (congestion-unaware analytical mode for quick
// design sweeps; see DESIGN.md §11). -faults requires the packet
// backend; the degradation study always runs on it.
//
// -audit attaches the invariant auditor (byte conservation, quiescence,
// free-list poisoning) to every simulation instance the sweep creates and
// exits non-zero if any run violates an invariant.
//
// -faults applies a JSON fault plan (degraded links, outages, stragglers,
// packet drops with retransmit; see DESIGN.md §8) to every simulation the
// sweep creates — "rerun the paper's figures on a lossy fabric" is one
// flag. Fault decisions derive from the plan's seed, so results stay
// byte-identical for every -parallel value.
//
// Full mode sweeps the paper's message-size ranges and runs two training
// iterations of ResNet-50 and Transformer; -quick shrinks everything for a
// fast smoke run.
//
// -intra-parallel N additionally partitions each packet-mode simulation
// point across N shard-pool workers (intra-run parallelism, DESIGN.md
// §13) — use it when a few huge points dominate a sweep. CSVs stay
// byte-identical at any value. Incompatible with -faults.
//
// Each figure's independent simulation points fan out across -parallel
// worker goroutines (default: all CPUs). Every point still runs on its own
// single-threaded deterministic engine and results are collected in
// submission order, so the CSV output is byte-identical for every
// -parallel value; see DESIGN.md "Parallel execution model".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"astrasim/internal/audit"
	"astrasim/internal/config"
	"astrasim/internal/experiments"
	"astrasim/internal/faults"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (fig09..fig18, ext4d/extmap/extenergy/extablation, or all)")
	out := flag.String("out", "results", "output directory for CSV files")
	quick := flag.Bool("quick", false, "reduced sizes/iterations for a fast smoke run")
	ext := flag.Bool("ext", false, "also run the future-work extension studies with -fig all")
	workers := flag.Int("parallel", runtime.NumCPU(), "worker goroutines for independent simulation points (1 = serial)")
	auditFlag := flag.Bool("audit", false, "audit every simulation for invariant violations (byte conservation, quiescence)")
	faultsFlag := flag.String("faults", "", "JSON fault plan applied to every simulation (see DESIGN.md §8)")
	backendFlag := flag.String("backend", "packet", "network backend: packet (congestion-aware) or fast (congestion-unaware analytical)")
	intraParallel := flag.Int("intra-parallel", 0, "shard-pool workers for intra-run parallel packet simulation inside each point (0 = serial engine; CSVs are identical at any count)")
	flag.Parse()

	backend, err := config.ParseBackend(*backendFlag)
	if err != nil {
		fatal(err)
	}
	if *faultsFlag != "" && backend != config.PacketBackend {
		fatal(fmt.Errorf("-faults requires the packet backend; the %v backend does not model faults", backend))
	}
	if *faultsFlag != "" && *intraParallel > 0 {
		fatal(fmt.Errorf("-faults and -intra-parallel are mutually exclusive; fault injection needs the serial engine"))
	}

	var collector *audit.Collector
	if *auditFlag {
		collector = &audit.Collector{}
		defer audit.AttachAll(collector)()
	}
	if *faultsFlag != "" {
		plan, err := faults.Load(*faultsFlag)
		if err != nil {
			fatal(err)
		}
		restore, err := faults.AttachAll(plan)
		if err != nil {
			fatal(err)
		}
		defer restore()
	}

	opts := experiments.Full()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Workers = *workers
	opts.Backend = backend
	opts.IntraParallel = *intraParallel
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	figures := experiments.Figures()
	if *ext || *fig != "all" {
		figures = append(figures, experiments.Extensions()...)
	}
	var ran int
	for _, f := range figures {
		if *fig != "all" && !strings.HasPrefix(f.ID, *fig) && f.ID != *fig {
			continue
		}
		ran++
		start := time.Now()
		fmt.Printf("=== %s: %s\n", f.ID, f.Title)
		tables, err := f.Run(opts)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", f.ID, err))
		}
		for _, t := range tables {
			if err := t.WriteASCII(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			path := filepath.Join(*out, t.ID+".csv")
			fh, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := t.WriteCSV(fh); err != nil {
				fatal(err)
			}
			if err := fh.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
		fmt.Printf("(%s in %.1fs)\n\n", f.ID, time.Since(start).Seconds())
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown figure %q; use fig09..fig18 or all", *fig))
	}
	if collector != nil {
		fmt.Println(collector.Summary())
		if v := collector.Violations(); len(v) > 0 {
			for _, s := range v {
				fmt.Fprintln(os.Stderr, "sweep: audit:", s)
			}
			fatal(fmt.Errorf("%d invariant violations", len(v)))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
