// Command collectives runs one collective operation on one topology — the
// "bandwidth test" microbenchmark behind Figs. 9-12 — and prints the total
// communication time, per-class traffic and energy, and the per-phase
// Queue P0-P4 / Network P1-P4 breakdown.
//
// Usage:
//
//	collectives -op allreduce -topology 4x4x4 -size 64MB [-algorithm enhanced]
//	collectives -op alltoall -topology a2a:1x8 -switches 7 -size 4MB
//	collectives -op allreduce -topology 2x2x2x2x2 -size 16MB   # 5D torus
//	collectives -op allreduce -size 1MB,4MB,16MB -parallel 4   # size sweep
//
// Topologies: "MxNxK" builds a hierarchical torus (local x horizontal x
// vertical); more than three dimensions builds the N-dimensional torus
// extension; "a2a:MxN" builds a hierarchical alltoall with -switches
// global switches.
//
// -size accepts a comma-separated list; the points run as independent
// simulations fanned across -parallel worker goroutines (default: all
// CPUs) and are reported in list order, so output is identical for any
// worker count. Every entry must be a positive size; a zero, negative,
// overflowing, or empty entry is rejected naming the offending token.
//
// -audit attaches the invariant auditor (byte conservation, quiescence,
// free-list poisoning) to each run, prints its report, and exits non-zero
// on any violation.
//
// -faults applies a JSON fault plan (degraded links, outages, stragglers,
// packet drops with retransmit; see DESIGN.md §8) to each run and reports
// the dropped-packet and retransmit counters alongside the usual stats.
//
// -backend selects the network transport: packet (congestion-aware,
// default) or fast (congestion-unaware analytical mode; see DESIGN.md
// §11). Single-chunk fast runs are cycle-exact with packet runs;
// -faults requires the packet backend.
//
// -intra-parallel N partitions the packet network across N shard-pool
// workers for intra-run parallel simulation (DESIGN.md §13). Results
// stay byte-identical to the serial engine at any worker count; 0 (the
// default) keeps the serial engine. Incompatible with -faults.
//
// -oracle cross-checks each run against the closed-form cost model in
// internal/oracle (DESIGN.md §9): single-chunk runs print the exact
// predicted-vs-simulated delta, chunked runs print the prediction bounds.
// Straggler faults are mirrored into the model; other fault classes are
// outside its domain and are flagged.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"astrasim/internal/audit"
	"astrasim/internal/cli"
	"astrasim/internal/collectives"
	"astrasim/internal/config"
	"astrasim/internal/energy"
	"astrasim/internal/faults"
	"astrasim/internal/graph"
	"astrasim/internal/oracle"
	"astrasim/internal/parallel"
	"astrasim/internal/system"
	"astrasim/internal/topology"
	"astrasim/internal/workload"
)

// options is the fully parsed and validated command line; main only
// builds one and runs it, so tests can drive parseArgs directly.
type options struct {
	op         collectives.Op
	topoSpec   string
	sizes      []int64
	sizeTokens []string
	algName    string
	alg        config.Algorithm
	policy     config.SchedulingPolicy
	topoOpts   cli.TopologyOptions
	splits     int
	symmetric  bool
	workers    int
	audit      bool
	oracle     bool
	backend    config.Backend
	intraPar   int
	plan       *faults.Plan
	// rmBW/rmLat configure the disaggregated remote-memory tier (0
	// bandwidth = disabled); graph replays pick placements per node.
	rmBW  float64
	rmLat uint64
	// graphW x graphD, when non-zero, replays a microbenchmark DAG
	// (width independent chains of depth dependent collectives) through
	// the graph workload engine instead of issuing one collective.
	graphW, graphD int
}

// parseArgs parses and validates the flag set. It never prints; every
// rejection comes back as an error naming the offending input.
func parseArgs(args []string) (*options, error) {
	fs := flag.NewFlagSet("collectives", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	opFlag := fs.String("op", "allreduce", "collective: reducescatter|allgather|allreduce|alltoall")
	topoFlag := fs.String("topology", "4x4x4", "torus MxNxK (or N-D), alltoall a2a:MxN, or composition hier:sw8,fc4,ring32")
	sizeFlag := fs.String("size", "4MB", "collective set size(s), comma-separated (supports KB/MB/GB suffixes)")
	algFlag := fs.String("algorithm", "baseline", "baseline or enhanced hierarchical algorithm")
	policyFlag := fs.String("scheduling-policy", "LIFO", "LIFO or FIFO ready-queue order")
	switches := fs.Int("switches", 2, "global switches (alltoall topology)")
	localRings := fs.Int("local-rings", 2, "unidirectional local rings")
	horizontalRings := fs.Int("horizontal-rings", 2, "bidirectional horizontal rings")
	verticalRings := fs.Int("vertical-rings", 2, "bidirectional vertical rings")
	splits := fs.Int("preferred-set-splits", config.DefaultSystem().PreferredSetSplits, "chunks per set")
	symmetric := fs.Bool("symmetric", false, "make local links identical to inter-package links")
	workers := fs.Int("parallel", runtime.NumCPU(), "worker goroutines when sweeping multiple sizes (1 = serial)")
	auditFlag := fs.Bool("audit", false, "audit each run for invariant violations (byte conservation, quiescence)")
	oracleFlag := fs.Bool("oracle", false, "cross-check each run against the closed-form oracle (DESIGN.md §9)")
	faultsFlag := fs.String("faults", "", "JSON fault plan applied to each run (see DESIGN.md §8)")
	backendFlag := fs.String("backend", "packet", "network backend: packet (congestion-aware) or fast (congestion-unaware analytical)")
	intraParallel := fs.Int("intra-parallel", 0, "shard-pool workers for intra-run parallel packet simulation (0 = serial engine; results are identical at any count)")
	graphBench := fs.String("graph-bench", "", "replay a WIDTHxDEPTH microbenchmark DAG of the selected op through the graph engine (e.g. 4x8)")
	remoteMem := fs.String("remote-mem", "", "disaggregated memory tier, \"bw=<bytes/cycle>[,lat=<cycles>]\" (empty = disabled)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	o := &options{
		topoSpec: *topoFlag,
		algName:  *algFlag,
		topoOpts: cli.TopologyOptions{
			LocalRings:      *localRings,
			HorizontalRings: *horizontalRings,
			VerticalRings:   *verticalRings,
			GlobalSwitches:  *switches,
		},
		splits:    *splits,
		symmetric: *symmetric,
		workers:   *workers,
		audit:     *auditFlag,
		oracle:    *oracleFlag,
		intraPar:  *intraParallel,
	}
	var err error
	if o.op, err = collectives.ParseOp(strings.ToUpper(*opFlag)); err != nil {
		return nil, err
	}
	if o.alg, err = config.ParseAlgorithm(*algFlag); err != nil {
		return nil, err
	}
	if o.policy, err = config.ParseSchedulingPolicy(*policyFlag); err != nil {
		return nil, err
	}
	if o.sizes, o.sizeTokens, err = cli.ParseSizeList(*sizeFlag); err != nil {
		return nil, err
	}
	if o.splits < 1 {
		return nil, fmt.Errorf("collectives: -preferred-set-splits must be >= 1, got %d", o.splits)
	}
	if o.workers < 1 {
		return nil, fmt.Errorf("collectives: -parallel must be >= 1, got %d", o.workers)
	}
	if o.backend, err = config.ParseBackend(*backendFlag); err != nil {
		return nil, err
	}
	if o.intraPar < 0 {
		return nil, fmt.Errorf("collectives: -intra-parallel must be >= 0, got %d", o.intraPar)
	}
	if *faultsFlag != "" {
		if o.plan, err = faults.Load(*faultsFlag); err != nil {
			return nil, err
		}
		if o.backend != config.PacketBackend {
			return nil, fmt.Errorf("collectives: -faults requires the packet backend; the %v backend does not model faults", o.backend)
		}
		if o.intraPar > 0 {
			return nil, fmt.Errorf("collectives: -faults and -intra-parallel are mutually exclusive; fault injection needs the serial engine")
		}
	}
	if *graphBench != "" {
		if n, err := fmt.Sscanf(*graphBench, "%dx%d", &o.graphW, &o.graphD); err != nil || n != 2 || o.graphW <= 0 || o.graphD <= 0 {
			return nil, fmt.Errorf("collectives: -graph-bench wants WIDTHxDEPTH with positive terms, got %q", *graphBench)
		}
	}
	if *remoteMem != "" {
		if o.rmBW, o.rmLat, err = cli.ParseRemoteMem(*remoteMem); err != nil {
			return nil, err
		}
	}
	return o, nil
}

func main() {
	o, err := parseArgs(os.Args[1:])
	if err != nil {
		fatal(err)
	}

	cfg := config.DefaultSystem()
	cfg.Algorithm = o.alg
	cfg.SchedulingPolicy = o.policy
	cfg.PreferredSetSplits = o.splits
	cfg.Backend = o.backend
	cfg.IntraParallel = o.intraPar
	cfg.RemoteMemBandwidth, cfg.RemoteMemLatency = o.rmBW, o.rmLat
	topo, err := cli.BuildTopology(o.topoSpec, o.topoOpts, &cfg)
	if err != nil {
		fatal(err)
	}

	net := config.DefaultNetwork()
	if o.symmetric {
		net.LocalLinkBandwidth = net.PackageLinkBandwidth
		net.LocalLinkLatency = net.PackageLinkLatency
		net.LocalPacketSize = net.PackagePacketSize
	}

	var model *oracle.Model
	if o.oracle {
		if model, err = oracle.NewModel(topo, cfg, net); err != nil {
			fatal(fmt.Errorf("-oracle: %w", err))
		}
		if o.plan != nil {
			for _, s := range o.plan.Stragglers {
				if s.Node < topo.NumNPUs() {
					if err := model.SetNodeStragglerFactor(topology.Node(s.Node), s.Factor); err != nil {
						fatal(fmt.Errorf("-oracle: %w", err))
					}
				}
			}
			if len(o.plan.Degrades)+len(o.plan.Outages)+len(o.plan.Drops) > 0 {
				fmt.Println("oracle: note: degraded-link/outage/drop faults are outside the model; expect divergence")
			}
		}
	}

	if o.graphW > 0 {
		if err := runGraphBench(o, topo, cfg, net); err != nil {
			fatal(err)
		}
		return
	}

	// Each size is an independent simulation (fresh engine/network per
	// run, topology shared read-only); fan them across the worker pool
	// and print in submission order.
	type result struct {
		inst *system.Instance
		h    *system.Handle
		rep  audit.Report
	}
	results, err := parallel.Map(parallel.New(o.workers), len(o.sizes), func(i int) (result, error) {
		inst, err := system.NewInstance(topo, cfg, net)
		if err != nil {
			return result{}, err
		}
		var aud *audit.Auditor
		if o.audit {
			aud = audit.Attach(inst.Sys, inst.Net)
		}
		if o.plan != nil {
			if err := faults.Apply(o.plan, inst); err != nil {
				return result{}, err
			}
		}
		done := false
		h, err := inst.Sys.IssueCollective(o.op, o.sizes[i], o.op.String(), func(*system.Handle) { done = true })
		if err != nil {
			return result{}, err
		}
		inst.Eng.Run()
		if !done {
			return result{}, fmt.Errorf("collective of %d bytes did not complete", o.sizes[i])
		}
		r := result{inst: inst, h: h}
		if aud != nil {
			r.rep = aud.Report()
		}
		return r, nil
	})
	if err != nil {
		fatal(err)
	}
	violations := 0
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		printResult(o.op, o.sizeTokens[i], o.algName, r.inst, r.h)
		if o.plan != nil {
			ds := r.inst.Net.DropStats()
			fmt.Printf("faults: %d packets dropped (%d bytes), %d retransmits (%d goodput bytes resent)\n",
				ds.DroppedPackets, ds.DroppedBytes, r.inst.Sys.Retransmits(), r.inst.Sys.RetransmittedBytes())
		}
		if model != nil {
			printOracle(model, o.op, o.sizes[i], r.h)
		}
		if o.audit {
			fmt.Printf("audit: %s\n", r.rep)
			violations += len(r.rep.Violations)
		}
	}
	if violations > 0 {
		fatal(fmt.Errorf("%d invariant violations", violations))
	}
}

// runGraphBench replays the WIDTHxDEPTH microbenchmark DAG for every
// requested size: width independent chains each running depth dependent
// collectives, scheduled by the graph workload engine.
func runGraphBench(o *options, topo topology.Topology, cfg config.System, net config.Network) error {
	type result struct {
		inst *system.Instance
		res  workload.Result
		rep  audit.Report
	}
	results, err := parallel.Map(parallel.New(o.workers), len(o.sizes), func(i int) (result, error) {
		g, err := graph.Microbench(o.op, o.sizes[i], o.graphW, o.graphD)
		if err != nil {
			return result{}, err
		}
		inst, err := system.NewInstance(topo, cfg, net)
		if err != nil {
			return result{}, err
		}
		var aud *audit.Auditor
		if o.audit {
			aud = audit.Attach(inst.Sys, inst.Net)
		}
		if o.plan != nil {
			if err := faults.Apply(o.plan, inst); err != nil {
				return result{}, err
			}
		}
		res, err := graph.Run(inst, g)
		if err != nil {
			return result{}, err
		}
		r := result{inst: inst, res: res}
		if aud != nil {
			r.rep = aud.Report()
		}
		return r, nil
	})
	if err != nil {
		return err
	}
	violations := 0
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("graph microbench: %d x %v of %s on %s (%s algorithm, %d NPUs)\n",
			o.graphW, o.op, o.sizeTokens[i], r.inst.Topo.Name(), o.algName, r.inst.Topo.NumNPUs())
		fmt.Printf("depth %d per lane, %d collectives total\n", o.graphD, o.graphW*o.graphD)
		fmt.Printf("total time: %d cycles (%.3f us at 1 GHz)\n",
			r.res.TotalCycles, float64(r.res.TotalCycles)/1000)
		for _, l := range r.res.Layers {
			fmt.Printf("  %s: %d raw comm cycles over %d collectives\n",
				l.Name, l.TotalCommCycles(), len(l.FwdHandles))
		}
		if o.plan != nil {
			ds := r.inst.Net.DropStats()
			fmt.Printf("faults: %d packets dropped (%d bytes), %d retransmits (%d goodput bytes resent)\n",
				ds.DroppedPackets, ds.DroppedBytes, r.inst.Sys.Retransmits(), r.inst.Sys.RetransmittedBytes())
		}
		if o.audit {
			fmt.Printf("audit: %s\n", r.rep)
			violations += len(r.rep.Violations)
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d invariant violations", violations)
	}
	return nil
}

// printOracle reports the closed-form prediction next to the simulated
// duration: an exact delta in the single-chunk regime, the prediction
// envelope otherwise.
func printOracle(m *oracle.Model, op collectives.Op, bytes int64, h *system.Handle) {
	simulated := h.Duration()
	if pred, err := m.Predict(op, bytes); err == nil {
		delta := int64(simulated) - int64(pred.Cycles)
		status := "exact match"
		if delta != 0 {
			status = fmt.Sprintf("DELTA %+d cycles", delta)
		}
		fmt.Printf("oracle: predicted %d cycles, simulated %d — %s\n", pred.Cycles, simulated, status)
		return
	}
	lower, upper, err := m.PredictBounds(op, bytes)
	if err != nil {
		fmt.Printf("oracle: not applicable: %v\n", err)
		return
	}
	status := "within bounds"
	if simulated < lower || simulated > upper {
		status = "OUT OF BOUNDS"
	}
	fmt.Printf("oracle: predicted [%d, %d] cycles (chunked run), simulated %d — %s\n",
		lower, upper, simulated, status)
}

// printResult reports one run: total time, traffic, energy, per-phase
// breakdown, and link utilization.
func printResult(op collectives.Op, sizeSpec, alg string, inst *system.Instance, h *system.Handle) {
	fmt.Printf("%v of %s on %s (%s algorithm, %d NPUs)\n",
		op, sizeSpec, inst.Topo.Name(), alg, inst.Topo.NumNPUs())
	fmt.Printf("total communication time: %d cycles (%.3f us at 1 GHz)\n",
		h.Duration(), float64(h.Duration())/1000)
	intra, inter, scaleOut := inst.Net.TotalBytesByClass()
	e := energy.CommEnergy(inst.Net, energy.Default())
	fmt.Printf("traffic: %d intra-package, %d inter-package, %d scale-out bytes\n", intra, inter, scaleOut)
	fmt.Printf("communication energy: %.3g J (intra %.3g, inter %.3g, scale-out %.3g, routers %.3g)\n",
		e.Communication(), e.IntraPackage, e.InterPackage, e.ScaleOut, e.Router)
	fmt.Printf("phases: %d\n", h.NumPhases())
	for i, p := range h.Phases() {
		fmt.Printf("  P%d %-40v queue %10.1f  network %10.1f cycles\n",
			i+1, p, h.AvgQueueDelay(i+1), h.AvgNetworkDelay(i+1))
	}
	fmt.Printf("  P0 ready-queue delay: %.1f cycles\n", h.AvgQueueDelay(0))
	fmt.Println("link utilization over the run:")
	for _, class := range []topology.LinkClass{topology.IntraPackage, topology.InterPackage, topology.ScaleOutLink} {
		u, ok := inst.Net.UtilizationByClass(h.DoneAt)[class]
		if !ok {
			continue
		}
		fmt.Printf("  %-14v %4d links  avg %5.1f%%  peak %5.1f%%\n",
			class, u.Links, 100*u.AvgBusy, 100*u.PeakBusy)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "collectives:", err)
	os.Exit(1)
}
