// Command collectives runs one collective operation on one topology — the
// "bandwidth test" microbenchmark behind Figs. 9-12 — and prints the total
// communication time, per-class traffic and energy, and the per-phase
// Queue P0-P4 / Network P1-P4 breakdown.
//
// Usage:
//
//	collectives -op allreduce -topology 4x4x4 -size 64MB [-algorithm enhanced]
//	collectives -op alltoall -topology a2a:1x8 -switches 7 -size 4MB
//	collectives -op allreduce -topology 2x2x2x2x2 -size 16MB   # 5D torus
//	collectives -op allreduce -size 1MB,4MB,16MB -parallel 4   # size sweep
//
// Topologies: "MxNxK" builds a hierarchical torus (local x horizontal x
// vertical); more than three dimensions builds the N-dimensional torus
// extension; "a2a:MxN" builds a hierarchical alltoall with -switches
// global switches.
//
// -size accepts a comma-separated list; the points run as independent
// simulations fanned across -parallel worker goroutines (default: all
// CPUs) and are reported in list order, so output is identical for any
// worker count.
//
// -audit attaches the invariant auditor (byte conservation, quiescence,
// free-list poisoning) to each run, prints its report, and exits non-zero
// on any violation.
//
// -faults applies a JSON fault plan (degraded links, outages, stragglers,
// packet drops with retransmit; see DESIGN.md §8) to each run and reports
// the dropped-packet and retransmit counters alongside the usual stats.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"astrasim/internal/audit"
	"astrasim/internal/cli"
	"astrasim/internal/collectives"
	"astrasim/internal/config"
	"astrasim/internal/energy"
	"astrasim/internal/faults"
	"astrasim/internal/parallel"
	"astrasim/internal/system"
	"astrasim/internal/topology"
)

func main() {
	opFlag := flag.String("op", "allreduce", "collective: reducescatter|allgather|allreduce|alltoall")
	topoFlag := flag.String("topology", "4x4x4", "torus MxNxK (or N-D), or alltoall a2a:MxN")
	sizeFlag := flag.String("size", "4MB", "collective set size(s), comma-separated (supports KB/MB/GB suffixes)")
	algFlag := flag.String("algorithm", "baseline", "baseline or enhanced hierarchical algorithm")
	policyFlag := flag.String("scheduling-policy", "LIFO", "LIFO or FIFO ready-queue order")
	switches := flag.Int("switches", 2, "global switches (alltoall topology)")
	localRings := flag.Int("local-rings", 2, "unidirectional local rings")
	horizontalRings := flag.Int("horizontal-rings", 2, "bidirectional horizontal rings")
	verticalRings := flag.Int("vertical-rings", 2, "bidirectional vertical rings")
	splits := flag.Int("preferred-set-splits", config.DefaultSystem().PreferredSetSplits, "chunks per set")
	symmetric := flag.Bool("symmetric", false, "make local links identical to inter-package links")
	workers := flag.Int("parallel", runtime.NumCPU(), "worker goroutines when sweeping multiple sizes (1 = serial)")
	auditFlag := flag.Bool("audit", false, "audit each run for invariant violations (byte conservation, quiescence)")
	faultsFlag := flag.String("faults", "", "JSON fault plan applied to each run (see DESIGN.md §8)")
	flag.Parse()

	var plan *faults.Plan
	if *faultsFlag != "" {
		var err error
		if plan, err = faults.Load(*faultsFlag); err != nil {
			fatal(err)
		}
	}

	op, err := collectives.ParseOp(strings.ToUpper(*opFlag))
	if err != nil {
		fatal(err)
	}
	alg, err := config.ParseAlgorithm(*algFlag)
	if err != nil {
		fatal(err)
	}
	policy, err := config.ParseSchedulingPolicy(*policyFlag)
	if err != nil {
		fatal(err)
	}
	sizeSpecs := strings.Split(*sizeFlag, ",")
	sizes := make([]int64, len(sizeSpecs))
	for i, spec := range sizeSpecs {
		if sizes[i], err = cli.ParseSize(strings.TrimSpace(spec)); err != nil {
			fatal(err)
		}
	}

	cfg := config.DefaultSystem()
	cfg.Algorithm = alg
	cfg.SchedulingPolicy = policy
	cfg.PreferredSetSplits = *splits
	topo, err := cli.BuildTopology(*topoFlag, cli.TopologyOptions{
		LocalRings:      *localRings,
		HorizontalRings: *horizontalRings,
		VerticalRings:   *verticalRings,
		GlobalSwitches:  *switches,
	}, &cfg)
	if err != nil {
		fatal(err)
	}

	net := config.DefaultNetwork()
	if *symmetric {
		net.LocalLinkBandwidth = net.PackageLinkBandwidth
		net.LocalLinkLatency = net.PackageLinkLatency
		net.LocalPacketSize = net.PackagePacketSize
	}

	// Each size is an independent simulation (fresh engine/network per
	// run, topology shared read-only); fan them across the worker pool
	// and print in submission order.
	type result struct {
		inst *system.Instance
		h    *system.Handle
		rep  audit.Report
	}
	results, err := parallel.Map(parallel.New(*workers), len(sizes), func(i int) (result, error) {
		inst, err := system.NewInstance(topo, cfg, net)
		if err != nil {
			return result{}, err
		}
		var aud *audit.Auditor
		if *auditFlag {
			aud = audit.Attach(inst.Sys, inst.Net)
		}
		if plan != nil {
			if err := faults.Apply(plan, inst); err != nil {
				return result{}, err
			}
		}
		done := false
		h, err := inst.Sys.IssueCollective(op, sizes[i], op.String(), func(*system.Handle) { done = true })
		if err != nil {
			return result{}, err
		}
		inst.Eng.Run()
		if !done {
			return result{}, fmt.Errorf("collective of %d bytes did not complete", sizes[i])
		}
		r := result{inst: inst, h: h}
		if aud != nil {
			r.rep = aud.Report()
		}
		return r, nil
	})
	if err != nil {
		fatal(err)
	}
	violations := 0
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		printResult(op, strings.TrimSpace(sizeSpecs[i]), *algFlag, r.inst, r.h)
		if plan != nil {
			ds := r.inst.Net.DropStats()
			fmt.Printf("faults: %d packets dropped (%d bytes), %d retransmits (%d goodput bytes resent)\n",
				ds.DroppedPackets, ds.DroppedBytes, r.inst.Sys.Retransmits(), r.inst.Sys.RetransmittedBytes())
		}
		if *auditFlag {
			fmt.Printf("audit: %s\n", r.rep)
			violations += len(r.rep.Violations)
		}
	}
	if violations > 0 {
		fatal(fmt.Errorf("%d invariant violations", violations))
	}
}

// printResult reports one run: total time, traffic, energy, per-phase
// breakdown, and link utilization.
func printResult(op collectives.Op, sizeSpec, alg string, inst *system.Instance, h *system.Handle) {
	fmt.Printf("%v of %s on %s (%s algorithm, %d NPUs)\n",
		op, sizeSpec, inst.Topo.Name(), alg, inst.Topo.NumNPUs())
	fmt.Printf("total communication time: %d cycles (%.3f us at 1 GHz)\n",
		h.Duration(), float64(h.Duration())/1000)
	intra, inter, scaleOut := inst.Net.TotalBytesByClass()
	e := energy.CommEnergy(inst.Net, energy.Default())
	fmt.Printf("traffic: %d intra-package, %d inter-package, %d scale-out bytes\n", intra, inter, scaleOut)
	fmt.Printf("communication energy: %.3g J (intra %.3g, inter %.3g, scale-out %.3g, routers %.3g)\n",
		e.Communication(), e.IntraPackage, e.InterPackage, e.ScaleOut, e.Router)
	fmt.Printf("phases: %d\n", h.NumPhases())
	for i, p := range h.Phases() {
		fmt.Printf("  P%d %-40v queue %10.1f  network %10.1f cycles\n",
			i+1, p, h.AvgQueueDelay(i+1), h.AvgNetworkDelay(i+1))
	}
	fmt.Printf("  P0 ready-queue delay: %.1f cycles\n", h.AvgQueueDelay(0))
	fmt.Println("link utilization over the run:")
	for _, class := range []topology.LinkClass{topology.IntraPackage, topology.InterPackage, topology.ScaleOutLink} {
		u, ok := inst.Net.UtilizationByClass(h.DoneAt)[class]
		if !ok {
			continue
		}
		fmt.Printf("  %-14v %4d links  avg %5.1f%%  peak %5.1f%%\n",
			class, u.Links, 100*u.AvgBusy, 100*u.PeakBusy)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "collectives:", err)
	os.Exit(1)
}
