package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"astrasim/internal/collectives"
	"astrasim/internal/config"
)

// writePlan drops a fault-plan file into a test temp dir and returns its
// path.
func writePlan(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseArgs(t *testing.T) {
	validPlan := `{"seed": 1, "stragglers": [{"node": 0, "factor": 2}]}`
	invalidPlan := `{"drops": [{"class": "all", "probability": 0.5}]}` // drops without retry
	tests := []struct {
		name    string
		args    []string
		wantErr string // substring of the expected error ("" = success)
		check   func(t *testing.T, o *options)
	}{
		{
			name: "defaults",
			args: nil,
			check: func(t *testing.T, o *options) {
				if o.op != collectives.AllReduce || o.topoSpec != "4x4x4" || o.alg != config.Baseline {
					t.Fatalf("defaults = %+v", o)
				}
				if len(o.sizes) != 1 || o.sizes[0] != 4<<20 {
					t.Fatalf("default sizes = %v", o.sizes)
				}
				if o.audit || o.oracle || o.plan != nil {
					t.Fatalf("audit/oracle/faults on by default: %+v", o)
				}
			},
		},
		{
			name: "size list with suffixes and whitespace",
			args: []string{"-size", "1KB, 2MB ,3GB"},
			check: func(t *testing.T, o *options) {
				want := []int64{1 << 10, 2 << 20, 3 << 30}
				if len(o.sizes) != 3 {
					t.Fatalf("sizes = %v", o.sizes)
				}
				for i, w := range want {
					if o.sizes[i] != w {
						t.Fatalf("sizes[%d] = %d, want %d", i, o.sizes[i], w)
					}
				}
				if o.sizeTokens[1] != "2MB" {
					t.Fatalf("tokens = %v, want trimmed", o.sizeTokens)
				}
			},
		},
		{name: "size zero entry", args: []string{"-size", "4MB,0,8MB"}, wantErr: `entry 2 ("0")`},
		{name: "size negative entry", args: []string{"-size", "-7MB"}, wantErr: `"-7MB"`},
		{name: "size empty entry", args: []string{"-size", "4MB,,8MB"}, wantErr: "entry 2 is empty"},
		{name: "size overflow entry", args: []string{"-size", "99999999999GB"}, wantErr: "overflows int64"},
		{name: "size garbage entry", args: []string{"-size", "4MB,banana"}, wantErr: `entry 2 ("banana")`},
		{name: "bad op", args: []string{"-op", "gather"}, wantErr: "GATHER"},
		{name: "bad algorithm", args: []string{"-algorithm", "quantum"}, wantErr: "quantum"},
		{name: "bad scheduling policy", args: []string{"-scheduling-policy", "RANDOM"}, wantErr: "RANDOM"},
		{name: "zero splits", args: []string{"-preferred-set-splits", "0"}, wantErr: "-preferred-set-splits"},
		{name: "zero workers", args: []string{"-parallel", "0"}, wantErr: "-parallel"},
		{name: "unknown flag", args: []string{"-frobnicate"}, wantErr: "frobnicate"},
		{
			name: "audit and oracle flags",
			args: []string{"-audit", "-oracle", "-preferred-set-splits", "1"},
			check: func(t *testing.T, o *options) {
				if !o.audit || !o.oracle {
					t.Fatalf("audit=%v oracle=%v, want both true", o.audit, o.oracle)
				}
				if o.splits != 1 {
					t.Fatalf("splits = %d", o.splits)
				}
			},
		},
		{name: "faults file missing", args: []string{"-faults", "/nonexistent/plan.json"}, wantErr: "plan.json"},
		{
			name: "default backend is packet",
			args: nil,
			check: func(t *testing.T, o *options) {
				if o.backend != config.PacketBackend {
					t.Fatalf("default backend = %v, want packet", o.backend)
				}
			},
		},
		{
			name: "fast backend",
			args: []string{"-backend", "fast"},
			check: func(t *testing.T, o *options) {
				if o.backend != config.FastBackend {
					t.Fatalf("backend = %v, want fast", o.backend)
				}
			},
		},
		{
			name: "explicit packet backend",
			args: []string{"-backend", "packet"},
			check: func(t *testing.T, o *options) {
				if o.backend != config.PacketBackend {
					t.Fatalf("backend = %v, want packet", o.backend)
				}
			},
		},
		{name: "bad backend names the token", args: []string{"-backend", "warp"}, wantErr: `"warp"`},
		{name: "empty backend", args: []string{"-backend", ""}, wantErr: `""`},
		{
			name: "fast backend with audit is allowed",
			args: []string{"-backend", "fast", "-audit"},
			check: func(t *testing.T, o *options) {
				if o.backend != config.FastBackend || !o.audit {
					t.Fatalf("backend=%v audit=%v, want fast+audit", o.backend, o.audit)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseArgs(tc.args)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseArgs(%v) err = %v, want substring %q", tc.args, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseArgs(%v): %v", tc.args, err)
			}
			if tc.check != nil {
				tc.check(t, o)
			}
		})
	}

	t.Run("valid faults plan", func(t *testing.T) {
		o, err := parseArgs([]string{"-faults", writePlan(t, validPlan)})
		if err != nil {
			t.Fatal(err)
		}
		if o.plan == nil || len(o.plan.Stragglers) != 1 || o.plan.Seed != 1 {
			t.Fatalf("plan = %+v", o.plan)
		}
	})
	t.Run("invalid faults plan", func(t *testing.T) {
		if _, err := parseArgs([]string{"-faults", writePlan(t, invalidPlan)}); err == nil ||
			!strings.Contains(err.Error(), "retry") {
			t.Fatalf("err = %v, want drops-require-retry rejection", err)
		}
	})
	t.Run("faults with fast backend rejected", func(t *testing.T) {
		_, err := parseArgs([]string{"-faults", writePlan(t, validPlan), "-backend", "fast"})
		if err == nil || !strings.Contains(err.Error(), "packet backend") {
			t.Fatalf("err = %v, want faults-require-packet rejection", err)
		}
	})
	t.Run("faults with audit and oracle", func(t *testing.T) {
		o, err := parseArgs([]string{"-faults", writePlan(t, validPlan), "-audit", "-oracle"})
		if err != nil {
			t.Fatal(err)
		}
		if o.plan == nil || !o.audit || !o.oracle {
			t.Fatalf("combined flags = %+v", o)
		}
	})
}
