// Command astrasimd is the simulation-as-a-service daemon: a long-
// running HTTP/JSON server (internal/service) that accepts config +
// workload/graph + fault-plan submissions, runs them on a priority
// worker pool, and serves content-addressed cached results — identical
// submissions replay instantly, concurrent duplicates collapse into one
// run.
//
// Usage:
//
//	astrasimd [-addr :8080] [-workers N] [-cache-entries N]
//	          [-quota-rate R] [-quota-burst N] [-max-body-bytes N]
//
// Submit a job:
//
//	curl -s localhost:8080/v1/jobs -d '{
//	  "topology": "4x4x4",
//	  "backend": "fast",
//	  "collective": {"op": "allreduce", "bytes": 4194304}
//	}'
//
// The response carries the job's content address; resubmitting the same
// body returns the cached result byte for byte (X-Astrasim-Cache: hit).
// See DESIGN.md §12 for the API and scheme.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"astrasim/internal/service"
)

func main() {
	fs := flag.NewFlagSet("astrasimd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "simulation worker goroutines (0 = all CPUs)")
	cacheEntries := fs.Int("cache-entries", 4096, "content-addressed result cache capacity")
	quotaRate := fs.Float64("quota-rate", 0, "per-tenant token refill rate in runs/second (0 = quotas off)")
	quotaBurst := fs.Int("quota-burst", 8, "per-tenant token bucket capacity")
	maxBody := fs.Int64("max-body-bytes", 8<<20, "maximum submission body size in bytes")
	_ = fs.Parse(os.Args[1:])

	srv := service.New(service.Config{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		QuotaRate:    *quotaRate,
		QuotaBurst:   *quotaBurst,
		MaxBodyBytes: *maxBody,
	})
	defer srv.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "astrasimd: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "astrasimd: %v\n", err)
		os.Exit(1)
	}
}
