// Regression tests for scripts/bench.sh: the missing-benchmark guard
// (a renamed/removed LARGE benchmark must be a named failure, not a
// silently empty JSON) and the compare path's baseline join.
package astrasim_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// benchSh runs scripts/bench.sh with args and returns combined output.
func benchSh(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("sh", append([]string{"scripts/bench.sh"}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestBenchCheckNamesMissingBenchmark(t *testing.T) {
	txt := filepath.Join(t.TempDir(), "bench.txt")
	lines := "BenchmarkAllReduce16x32x32_PacketSerial-1 \t 1\t 90 ns/op\t 8 B/op\t 2 allocs/op\n"
	if err := os.WriteFile(txt, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}

	// All names present: exit 0.
	if out, err := benchSh(t, "check", txt, "BenchmarkAllReduce16x32x32_PacketSerial"); err != nil {
		t.Fatalf("check rejected a complete result set: %v\n%s", err, out)
	}

	// A renamed/removed benchmark: non-zero exit naming the benchmark.
	out, err := benchSh(t, "check", txt,
		"BenchmarkAllReduce16x32x32_PacketSerial|BenchmarkAllReduce16x32x32_IntraParallel")
	if err == nil {
		t.Fatalf("check accepted a result set missing a benchmark:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkAllReduce16x32x32_IntraParallel") {
		t.Fatalf("failure does not name the missing benchmark:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkAllReduce16x32x32_PacketSerial ") {
		t.Fatalf("failure names a benchmark that was present:\n%s", out)
	}
}

// TestBenchCheckGuardsLargeSet: every benchmark named in the script's
// LARGE set must exist in this package, or `bench.sh large` would die on
// the guard after minutes of benchmarking. Parses the LARGE= line and
// cross-checks against `go test -list`.
func TestBenchCheckGuardsLargeSet(t *testing.T) {
	script, err := os.ReadFile("scripts/bench.sh")
	if err != nil {
		t.Fatal(err)
	}
	var largeSet string
	for _, line := range strings.Split(string(script), "\n") {
		if strings.HasPrefix(line, "LARGE='") {
			largeSet = strings.TrimSuffix(strings.TrimPrefix(line, "LARGE='"), "'")
		}
	}
	if largeSet == "" {
		t.Fatal("scripts/bench.sh has no LARGE= set")
	}
	out, err := exec.Command("go", "test", "-run", "^$", "-list", largeSet, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go test -list: %v\n%s", err, out)
	}
	for _, name := range strings.Split(largeSet, "|") {
		if !strings.Contains(string(out), name) {
			t.Errorf("LARGE names %s, which no longer exists in bench_test.go", name)
		}
	}
}

// TestBenchComparePath drives compare mode against a crafted fresh run:
// an inflated ns/op must produce a ::warning annotation, and a benchmark
// absent from the committed baseline must be called out (not silently
// skipped) — while the run itself still exits zero, since CI regressions
// warn rather than fail.
func TestBenchComparePath(t *testing.T) {
	baseline, err := os.ReadFile("BENCH_core.json")
	if err != nil {
		t.Skip("no committed BENCH_core.json baseline")
	}
	// Pick the first benchmark name out of the committed baseline.
	fields := strings.SplitN(string(baseline), `"benchmark":"`, 2)
	if len(fields) != 2 {
		t.Fatalf("cannot parse baseline:\n%s", baseline)
	}
	name := fields[1][:strings.Index(fields[1], `"`)]

	work := t.TempDir()
	fresh := `[
  {"benchmark":"` + name + `","iterations":1,"ns_per_op":999999999999,"bytes_per_op":1,"allocs_per_op":1},
  {"benchmark":"BenchmarkNotInBaseline","iterations":1,"ns_per_op":5,"bytes_per_op":1,"allocs_per_op":1}
]`
	if err := os.WriteFile(filepath.Join(work, "BENCH_core.json"), []byte(fresh), 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := benchSh(t, "compare", work)
	if err != nil {
		t.Fatalf("compare exited non-zero: %v\n%s", err, out)
	}
	if !strings.Contains(out, "::warning") || !strings.Contains(out, name) {
		t.Fatalf("no regression warning for %s:\n%s", name, out)
	}
	if !strings.Contains(out, "BenchmarkNotInBaseline") {
		t.Fatalf("benchmark missing from baseline was silently skipped:\n%s", out)
	}
}
